#ifndef FAE_TENSOR_LINEAR_H_
#define FAE_TENSOR_LINEAR_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace fae {

/// A trainable tensor and its accumulated gradient.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  size_t numel() const { return value.numel(); }
};

/// Fully-connected layer y = x W + b with manual backward.
///
/// W is [in, out], b is [1, out]. The layer caches the forward input so
/// Backward can form weight gradients; one Forward must precede each
/// Backward (standard training loop usage).
class Linear {
 public:
  /// He-style initialization scaled for fan-in.
  Linear(size_t in, size_t out, Xoshiro256& rng, std::string name = "linear");

  /// y = x W + b; caches x.
  Tensor Forward(const Tensor& x);

  /// Accumulates dW, db and returns dL/dx.
  Tensor Backward(const Tensor& grad_out);

  /// Forward without caching (inference / evaluation path).
  Tensor ForwardInference(const Tensor& x) const;

  size_t in_features() const { return weight_.value.rows(); }
  size_t out_features() const { return weight_.value.cols(); }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

  /// Pointers to this layer's parameters, for optimizers and all-reduce.
  std::vector<Parameter*> Params();

  /// Installs a shared worker pool for the layer's GEMMs (nullptr runs
  /// them serially). Results are bit-identical at any thread count.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

 private:
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
  ThreadPool* pool_ = nullptr;  // not owned
};

}  // namespace fae

#endif  // FAE_TENSOR_LINEAR_H_
