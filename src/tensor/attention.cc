#include "tensor/attention.h"

#include <cmath>

#include "util/logging.h"

namespace fae {

Tensor DotAttention::Forward(const std::vector<Tensor>& history,
                             const Tensor& query) {
  FAE_CHECK_EQ(history.size(), query.rows());
  const size_t b = history.size();
  const size_t d = query.cols();
  history_ = history;
  query_ = query;
  weights_.assign(b, {});

  Tensor context(b, d);
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  for (size_t i = 0; i < b; ++i) {
    const Tensor& z = history_[i];
    FAE_CHECK_EQ(z.cols(), d);
    const size_t t_len = z.rows();
    FAE_CHECK_GE(t_len, 1u);
    std::vector<float>& a = weights_[i];
    a.resize(t_len);
    const float* q = query_.row(i);
    // scores
    float mx = -1e30f;
    for (size_t t = 0; t < t_len; ++t) {
      const float* zt = z.row(t);
      float dot = 0.0f;
      for (size_t k = 0; k < d; ++k) dot += zt[k] * q[k];
      a[t] = dot * scale;
      mx = std::max(mx, a[t]);
    }
    // softmax
    float sum = 0.0f;
    for (size_t t = 0; t < t_len; ++t) {
      a[t] = std::exp(a[t] - mx);
      sum += a[t];
    }
    for (size_t t = 0; t < t_len; ++t) a[t] /= sum;
    // context
    float* c = context.row(i);
    for (size_t t = 0; t < t_len; ++t) {
      const float* zt = z.row(t);
      for (size_t k = 0; k < d; ++k) c[k] += a[t] * zt[k];
    }
  }
  return context;
}

DotAttention::BackwardResult DotAttention::Backward(
    const Tensor& grad_context) {
  const size_t b = history_.size();
  const size_t d = query_.cols();
  FAE_CHECK_EQ(grad_context.rows(), b);
  FAE_CHECK_EQ(grad_context.cols(), d);

  BackwardResult out;
  out.grad_history.reserve(b);
  out.grad_query = Tensor(b, d);
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));

  for (size_t i = 0; i < b; ++i) {
    const Tensor& z = history_[i];
    const size_t t_len = z.rows();
    const std::vector<float>& a = weights_[i];
    const float* dc = grad_context.row(i);
    const float* q = query_.row(i);
    Tensor dz(t_len, d);

    // da_t = <dc, z_t>; also dZ_t += a_t * dc (context term).
    std::vector<float> da(t_len);
    for (size_t t = 0; t < t_len; ++t) {
      const float* zt = z.row(t);
      float* dzt = dz.row(t);
      float dot = 0.0f;
      for (size_t k = 0; k < d; ++k) {
        dot += dc[k] * zt[k];
        dzt[k] += a[t] * dc[k];
      }
      da[t] = dot;
    }
    // Softmax backward: ds = a ⊙ (da - <da, a>).
    float inner = 0.0f;
    for (size_t t = 0; t < t_len; ++t) inner += da[t] * a[t];
    std::vector<float> ds(t_len);
    for (size_t t = 0; t < t_len; ++t) ds[t] = a[t] * (da[t] - inner);
    // Score backward: score_t = scale * <z_t, q>.
    float* dq = out.grad_query.row(i);
    for (size_t t = 0; t < t_len; ++t) {
      const float* zt = z.row(t);
      float* dzt = dz.row(t);
      const float g = ds[t] * scale;
      for (size_t k = 0; k < d; ++k) {
        dq[k] += g * zt[k];
        dzt[k] += g * q[k];
      }
    }
    out.grad_history.push_back(std::move(dz));
  }
  return out;
}

}  // namespace fae
