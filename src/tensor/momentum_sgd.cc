#include "tensor/momentum_sgd.h"

#include "util/logging.h"

namespace fae {

MomentumSgd::MomentumSgd(std::vector<Parameter*> params, float lr,
                         float momentum)
    : params_(std::move(params)), lr_(lr), momentum_(momentum) {
  FAE_CHECK_GE(momentum_, 0.0f);
  FAE_CHECK_LT(momentum_, 1.0f);
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) {
    velocity_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void MomentumSgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    Tensor& v = velocity_[i];
    FAE_CHECK(v.SameShape(p->grad)) << "parameter set changed under optimizer";
    v.Scale(momentum_);
    v.Add(p->grad);
    p->value.Axpy(-lr_, v);
    p->grad.SetZero();
  }
}

void MomentumSgd::ResetVelocity() {
  for (Tensor& v : velocity_) v.SetZero();
}

}  // namespace fae
