#include "tensor/sgd.h"

namespace fae {

void Sgd::Step(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) {
    p->value.Axpy(-lr_, p->grad);
    p->grad.SetZero();
  }
}

void Sgd::ZeroGrad(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) p->grad.SetZero();
}

}  // namespace fae
