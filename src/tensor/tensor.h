#ifndef FAE_TENSOR_TENSOR_H_
#define FAE_TENSOR_TENSOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/random.h"

namespace fae {

/// Dense row-major float32 matrix — the only tensor rank the recommender
/// stack needs. A [n]-vector is represented as [n, 1] or [1, n] depending
/// on context; helpers below construct both.
///
/// The class is a plain value type: copyable, movable, no views. All
/// compute kernels live in ops.h so the storage stays trivial.
class Tensor {
 public:
  /// Empty 0x0 tensor.
  Tensor() : rows_(0), cols_(0) {}

  /// Zero-initialized rows x cols tensor.
  Tensor(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  /// Tensor initialized from a flat row-major buffer.
  Tensor(size_t rows, size_t cols, std::vector<float> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    FAE_CHECK_EQ(rows_ * cols_, data_.size());
  }

  static Tensor Zeros(size_t rows, size_t cols) { return Tensor(rows, cols); }

  /// All elements set to `value`.
  static Tensor Full(size_t rows, size_t cols, float value);

  /// I.i.d. N(0, stddev^2) entries.
  static Tensor Randn(size_t rows, size_t cols, float stddev,
                      Xoshiro256& rng);

  /// I.i.d. Uniform(-bound, bound) entries.
  static Tensor RandUniform(size_t rows, size_t cols, float bound,
                            Xoshiro256& rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Reshapes to rows x cols, reusing the existing allocation whenever the
  /// new element count fits the vector's capacity. Contents are
  /// unspecified afterwards (workspace semantics — callers overwrite or
  /// SetZero). This is what makes the training loop's activation and
  /// gradient workspaces allocation-free after the first step.
  void Resize(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  float& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float* row(size_t r) { return data_.data() + r * cols_; }
  const float* row(size_t r) const { return data_.data() + r * cols_; }

  /// Sets every element to zero (reuses the allocation).
  void SetZero();

  /// this += other (same shape).
  void Add(const Tensor& other);

  /// this += alpha * other (same shape).
  void Axpy(float alpha, const Tensor& other);

  /// this *= alpha.
  void Scale(float alpha);

  /// Sum of all elements.
  double Sum() const;

  /// Square root of the sum of squared elements.
  double Norm() const;

  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// "Tensor[3x4]" plus a few leading values, for debugging.
  std::string DebugString() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

/// Non-owning read view of a row-major float matrix. Lets the compute
/// kernels consume activations straight out of flat dataset buffers (a
/// mini-batch's dense block is a contiguous row range of the epoch's
/// gathered matrix) without copying them into a Tensor first. Implicitly
/// constructible from Tensor so every kernel keeps working on owned
/// storage too.
///
/// A MatView never owns: the viewed buffer must outlive it. Layers that
/// cache their forward input as a view rely on the caller keeping the
/// input alive until Backward — true for both batch memory (the flat
/// dataset outlives the epoch) and model workspaces (members).
struct MatView {
  const float* data = nullptr;
  size_t rows = 0;
  size_t cols = 0;

  MatView() = default;
  MatView(const float* data, size_t rows, size_t cols)
      : data(data), rows(rows), cols(cols) {}
  /*implicit*/ MatView(const Tensor& t)
      : data(t.data()), rows(t.rows()), cols(t.cols()) {}

  const float* row(size_t r) const { return data + r * cols; }
  float operator()(size_t r, size_t c) const { return data[r * cols + c]; }
  size_t numel() const { return rows * cols; }
};

/// Max |a - b| over all elements; infinity for shape mismatch.
float MaxAbsDiff(const Tensor& a, const Tensor& b);

}  // namespace fae

#endif  // FAE_TENSOR_TENSOR_H_
