#ifndef FAE_SIM_DEVICE_H_
#define FAE_SIM_DEVICE_H_

#include <cstdint>
#include <string>

namespace fae {

/// Analytic model of one compute device. The engine executes real training
/// math on the host while *charging* each phase to a device through these
/// rates (DESIGN.md §2: time is modeled, math is measured).
struct DeviceSpec {
  enum class Kind { kCpu, kGpu };

  std::string name;
  Kind kind = Kind::kCpu;

  /// Peak dense-math throughput (fp32 FLOP/s).
  double peak_flops = 0.0;
  /// Achievable fraction of peak for MLP-sized GEMMs at full occupancy.
  double dense_efficiency = 0.5;
  /// Per-device batch size at which dense kernels reach half of
  /// dense_efficiency: utilization = b / (b + half_batch). GPUs need
  /// thousands of rows to fill their SMs (this is why the paper's Fig 15
  /// speedups grow with the mini-batch size); CPUs saturate immediately
  /// (half_batch = 0).
  double half_batch = 0.0;

  /// Peak memory bandwidth (bytes/s).
  double mem_bandwidth = 0.0;
  /// Achievable fraction of peak for streaming access (optimizer sweeps).
  double stream_efficiency = 0.6;
  /// Achievable fraction of peak for random row gathers (embedding
  /// lookups); low on CPUs, higher on GPUs whose HBM tolerates scatter.
  double gather_efficiency = 0.2;

  /// Multiplier on sparse-optimizer time beyond the raw byte cost. CPUs
  /// pay a large framework scatter/read-modify-write penalty for sparse
  /// SGD (the paper: the optimizer "is massively parallel and therefore is
  /// not well suited for CPU execution", dominating baseline time in
  /// Fig 14); GPUs apply the same update as one parallel scatter.
  double sparse_update_overhead = 1.0;

  uint64_t mem_capacity = 0;  // bytes

  /// Power draw when executing (W) and when idle-but-powered (W).
  double busy_watts = 0.0;
  double idle_watts = 0.0;
};

/// Point-to-point interconnect model.
struct LinkSpec {
  std::string name;
  double bandwidth = 0.0;  // bytes/s
  double latency = 0.0;    // seconds per message
  /// Host-side cost of each transfer event (stream synchronization,
  /// copy-engine launch, pinned-buffer staging). Paid once per message on
  /// host-mediated links; zero for device-initiated links (NVLink). This
  /// fixed per-event cost is what makes per-batch CPU round trips (the
  /// baseline, and cache misses) expensive even when payloads are small.
  double host_sync_seconds = 0.0;
  double joules_per_byte = 0.0;
  /// Extra power an endpoint GPU draws while the link is active (DMA
  /// engines, memory controller, PHY, and clocks held at P0). This term is
  /// what makes the baseline's chatty CPU<->GPU traffic expensive and
  /// reproduces the paper's Table VI power gap ("primarily because of the
  /// reduced communication costs between devices").
  double endpoint_active_watts = 0.0;
};

/// The paper's server (Table II): Intel Xeon Silver 4116 + up to four
/// NVLink-connected Tesla V100-16GB GPUs on PCIe 3.0 x16. Multi-node
/// clusters (the paper's "multi-server scenario" extension) replicate this
/// server `num_nodes` times over `network`.
struct SystemSpec {
  DeviceSpec cpu;
  DeviceSpec gpu;
  /// GPUs per node.
  int num_gpus = 1;
  /// Nodes in the cluster; 1 reproduces the paper's single server.
  int num_nodes = 1;
  LinkSpec pcie;     // CPU <-> GPU
  LinkSpec nvlink;   // GPU <-> GPU, intra-node
  LinkSpec network;  // node <-> node (only used when num_nodes > 1)

  /// Total data-parallel ranks.
  int WorldSize() const { return num_gpus * num_nodes; }

  /// Per-GPU memory the operator allows for hot embeddings (the paper's
  /// L; §III-A3 finds L = 256 MB suffices for every dataset).
  uint64_t hot_embedding_budget = 256ULL << 20;
};

/// Table II presets.
DeviceSpec MakeXeonSilver4116();
DeviceSpec MakeTeslaV100();
LinkSpec MakePcieGen3x16();
LinkSpec MakeNvlink2();
/// 100 Gb/s RDMA-style datacenter interconnect.
LinkSpec MakeDatacenterNetwork();
SystemSpec MakePaperServer(int num_gpus);
/// `num_nodes` paper servers joined by MakeDatacenterNetwork().
SystemSpec MakeMultiNodeCluster(int num_nodes, int gpus_per_node);

}  // namespace fae

#endif  // FAE_SIM_DEVICE_H_
