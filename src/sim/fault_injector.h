#ifndef FAE_SIM_FAULT_INJECTOR_H_
#define FAE_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/statusor.h"

namespace fae {

/// Kinds of injected faults, each exercising a different recovery path in
/// the trainer or the online serving loop:
///   - kDeviceTransient: a GPU rejects the batch; the engine retries with
///     exponential backoff (bounded; a fault repeating past the retry cap
///     models a permanent device loss and fails the run with a Status).
///   - kLinkStall: the CPU<->GPU link stalls for a fixed number of modeled
///     seconds; pure slowdown, no retry needed.
///   - kCorruptSync: a hot-slice embedding sync delivers garbage; the
///     engine discards every GPU replica and re-pulls from the CPU master
///     copy, which is always authoritative.
///   - kCrash: the whole job dies at this step; training stops and returns
///     a partial report (recovery is resuming from the last checkpoint).
/// Serving-side kinds (delivered by the ServingLoop; batch training logs
/// and ignores them — they have no meaning without a serving path):
///   - kRecalStall: the in-flight hot-set recalibration stalls for the
///     given modeled seconds, typically blowing its deadline; the watchdog
///     aborts it and serving degrades to the stale hot set.
///   - kSwapCrash: the recalibration worker dies mid-hot-swap, leaving a
///     torn swap artifact; the all-or-nothing container load rejects it and
///     the previous hot set stays active.
///   - kLookupLoss: the GPU holding the hot slice is lost on the lookup
///     path; the affected requests are answered from the CPU master copy
///     (slower, never dropped) and the slice is re-replicated.
enum class FaultKind : int {
  kDeviceTransient = 0,
  kLinkStall,
  kCorruptSync,
  kCrash,
  kRecalStall,
  kSwapCrash,
  kLookupLoss,
};

std::string_view FaultKindName(FaultKind kind);

/// One scheduled fault: fires when training (or serving) reaches `step`
/// completed iterations (global across epochs; request batches for the
/// serving loop).
struct FaultEvent {
  FaultKind kind = FaultKind::kDeviceTransient;
  uint64_t step = 0;
  /// kLinkStall / kRecalStall: modeled stall seconds. Ignored by other
  /// kinds.
  double stall_seconds = 0.0;
  /// kDeviceTransient / kLookupLoss: how many consecutive attempts fail
  /// before the device comes back. > the engine's retry cap means a
  /// permanent fault.
  uint32_t times = 1;
};

/// Counters for the run report.
struct FaultStats {
  uint64_t device_faults = 0;    // transient device failures delivered
  uint64_t retries = 0;          // retry attempts the engine performed
  uint64_t link_stalls = 0;
  uint64_t corrupt_syncs = 0;
  uint64_t crashes = 0;
  // Serving-side (ServingLoop):
  uint64_t recal_stalls = 0;     // recalibration stalls delivered
  uint64_t swap_crashes = 0;     // hot-swaps torn mid-write
  uint64_t lookup_losses = 0;    // lookup-path device losses delivered
  /// Times the serving loop restored full (fresh hot slice) service after
  /// a fault degraded it — the "recovery counted" number the bench gates.
  uint64_t recoveries = 0;
};

/// Deterministic fault-injection schedule for resilience testing (§ fault
/// tolerance in DESIGN.md). Built from a plan string and drained by the
/// trainer (or the serving loop) once per iteration.
///
/// Plan grammar — comma-separated events, each `kind@step[:stall][xN]`:
///   device@30          one transient device failure before iteration 30
///   device@200x7       device fails 7 consecutive attempts at step 200
///   stall@50:0.2       0.2 s link stall before iteration 50
///   corrupt@75         corrupted hot-slice sync before iteration 75
///   crash@120          hard crash before iteration 120
///   recal-stall@40:3   recalibration in flight at batch 40 stalls 3 s
///   swap-crash@60      hot-swap at batch 60 tears mid-write
///   lookup-loss@80x2   hot-slice lookups fail twice at batch 80
/// Rejected with InvalidArgument (never a silent no-op): empty plans,
/// empty specs (trailing/doubled commas), duplicate (kind, step) pairs,
/// and numeric overflow in `step` or `xN`.
class FaultInjector {
 public:
  /// Parses a plan string. InvalidArgument on malformed specs.
  static StatusOr<FaultInjector> Parse(const std::string& plan);

  explicit FaultInjector(std::vector<FaultEvent> events);
  FaultInjector() = default;

  /// All events scheduled for `step`, in plan order; each is delivered at
  /// most once. Steps are completed-iteration counts, so `kind@k` fires
  /// before the (k+1)-th batch runs.
  std::vector<FaultEvent> Drain(uint64_t step);

  /// Marks every event scheduled before `step` as already delivered. A
  /// resumed run calls this so faults that fired before the checkpoint
  /// (including the crash being recovered from) do not fire again.
  void SkipUntil(uint64_t step);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  FaultStats& stats() { return stats_; }
  const FaultStats& stats() const { return stats_; }

 private:
  std::vector<FaultEvent> events_;
  std::vector<bool> delivered_;
  FaultStats stats_;
};

}  // namespace fae

#endif  // FAE_SIM_FAULT_INJECTOR_H_
