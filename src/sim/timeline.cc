#include "sim/timeline.h"

#include "util/string_util.h"

namespace fae {

std::string_view PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kEmbeddingForward:
      return "embedding_forward";
    case Phase::kMlpForward:
      return "mlp_forward";
    case Phase::kMlpBackward:
      return "mlp_backward";
    case Phase::kEmbeddingBackward:
      return "embedding_backward";
    case Phase::kOptimizerDense:
      return "optimizer_dense";
    case Phase::kOptimizerSparse:
      return "optimizer_sparse";
    case Phase::kCpuGpuTransfer:
      return "cpu_gpu_transfer";
    case Phase::kAllReduce:
      return "all_reduce";
    case Phase::kEmbeddingSync:
      return "embedding_sync";
    case Phase::kNetwork:
      return "inter_node_comm";
    case Phase::kFaultRecovery:
      return "fault_recovery";
    case Phase::kInputPrep:
      return "input_prep";
    case Phase::kNumPhases:
      break;
  }
  return "unknown";
}

double Timeline::PhaseSumSeconds() const {
  double total = 0.0;
  for (double s : seconds_) total += s;
  return total;
}

double Timeline::TotalSeconds() const {
  return wall_seconds_ > 0.0 ? wall_seconds_ : PhaseSumSeconds();
}

double Timeline::OverlappedTotalSeconds() const {
  const double total = TotalSeconds();
  const double saved =
      overlap_saved_ + cache_saved_ + sharding_saved_ + stale_skip_saved_;
  return saved < total ? total - saved : 0.0;
}

double Timeline::OverlapFraction() const {
  const double total = TotalSeconds();
  if (total <= 0.0 || overlap_saved_ <= 0.0) return 0.0;
  return overlap_saved_ >= total ? 1.0 : overlap_saved_ / total;
}

void Timeline::Merge(const Timeline& other) {
  for (size_t i = 0; i < seconds_.size(); ++i) {
    seconds_[i] += other.seconds_[i];
  }
  wall_seconds_ += other.wall_seconds_;
  overlap_saved_ += other.overlap_saved_;
  cache_saved_ += other.cache_saved_;
  sharding_saved_ += other.sharding_saved_;
  stale_skip_saved_ += other.stale_skip_saved_;
  stale_skip_counters_.skipped_rows += other.stale_skip_counters_.skipped_rows;
  stale_skip_counters_.updated_rows += other.stale_skip_counters_.updated_rows;
  stale_skip_counters_.reactivated_rows +=
      other.stale_skip_counters_.reactivated_rows;
  stale_skip_counters_.guard_tightens +=
      other.stale_skip_counters_.guard_tightens;
  stale_skip_counters_.guard_widens += other.stale_skip_counters_.guard_widens;
  cache_counters_.hits += other.cache_counters_.hits;
  cache_counters_.misses += other.cache_counters_.misses;
  cache_counters_.stale_refreshes += other.cache_counters_.stale_refreshes;
  cache_counters_.prefetch_bytes += other.cache_counters_.prefetch_bytes;
  cache_counters_.writeback_bytes += other.cache_counters_.writeback_bytes;
  cache_counters_.plain_transfer_bytes +=
      other.cache_counters_.plain_transfer_bytes;
  cache_counters_.effective_transfer_bytes +=
      other.cache_counters_.effective_transfer_bytes;
  cpu_busy_ += other.cpu_busy_;
  gpu_busy_ += other.gpu_busy_;
  pcie_bytes_ += other.pcie_bytes_;
  nvlink_bytes_ += other.nvlink_bytes_;
  network_bytes_ += other.network_bytes_;
}

std::string Timeline::Report() const {
  const double total = TotalSeconds();
  std::string out = StrFormat("total %s\n", HumanSeconds(total).c_str());
  for (int i = 0; i < static_cast<int>(Phase::kNumPhases); ++i) {
    if (seconds_[i] == 0.0) continue;
    out += StrFormat("  %-20s %12s  %5.1f%%\n",
                     std::string(PhaseName(static_cast<Phase>(i))).c_str(),
                     HumanSeconds(seconds_[i]).c_str(),
                     total > 0 ? 100.0 * seconds_[i] / total : 0.0);
  }
  if (overlap_saved_ > 0.0) {
    out += StrFormat("  overlap hid %s (%.1f%%): pipelined wall %s\n",
                     HumanSeconds(overlap_saved_).c_str(),
                     100.0 * OverlapFraction(),
                     HumanSeconds(OverlappedTotalSeconds()).c_str());
  }
  if (cache_counters_.hits + cache_counters_.misses > 0) {
    const double looks = static_cast<double>(cache_counters_.hits +
                                             cache_counters_.misses);
    out += StrFormat(
        "  lookahead cache: %.1f%% hit, saved %s, prefetch %s, "
        "writeback %s\n",
        100.0 * static_cast<double>(cache_counters_.hits) / looks,
        HumanSeconds(cache_saved_).c_str(),
        HumanBytes(cache_counters_.prefetch_bytes).c_str(),
        HumanBytes(cache_counters_.writeback_bytes).c_str());
  }
  if (sharding_saved_ != 0.0) {
    out += StrFormat("  sharded placement %s %s vs replicate\n",
                     sharding_saved_ > 0.0 ? "saved" : "cost",
                     HumanSeconds(sharding_saved_ > 0.0 ? sharding_saved_
                                                        : -sharding_saved_)
                         .c_str());
  }
  if (stale_skip_counters_.skipped_rows + stale_skip_counters_.updated_rows >
      0) {
    const double touched =
        static_cast<double>(stale_skip_counters_.skipped_rows +
                            stale_skip_counters_.updated_rows);
    out += StrFormat(
        "  stale skip: %.1f%% of row-updates skipped, saved %s, "
        "reactivated %llu\n",
        100.0 * static_cast<double>(stale_skip_counters_.skipped_rows) /
            touched,
        HumanSeconds(stale_skip_saved_).c_str(),
        static_cast<unsigned long long>(stale_skip_counters_.reactivated_rows));
  }
  out += StrFormat("  pcie %s, nvlink %s, network %s\n",
                   HumanBytes(pcie_bytes_).c_str(),
                   HumanBytes(nvlink_bytes_).c_str(),
                   HumanBytes(network_bytes_).c_str());
  return out;
}

}  // namespace fae
