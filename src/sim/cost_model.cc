#include "sim/cost_model.h"

#include <algorithm>

#include "util/logging.h"

namespace fae {

double CostModel::DenseComputeSeconds(uint64_t flops,
                                      const DeviceSpec& dev) const {
  FAE_CHECK_GT(dev.peak_flops, 0.0);
  return static_cast<double>(flops) /
         (dev.peak_flops * dev.dense_efficiency);
}

double CostModel::DenseComputeSeconds(uint64_t flops,
                                      uint64_t per_device_batch,
                                      const DeviceSpec& dev) const {
  const double base = DenseComputeSeconds(flops, dev);
  if (dev.half_batch <= 0.0 || per_device_batch == 0) return base;
  const double b = static_cast<double>(per_device_batch);
  const double utilization = b / (b + dev.half_batch);
  return base / utilization;
}

double CostModel::GatherSeconds(uint64_t bytes, const DeviceSpec& dev) const {
  FAE_CHECK_GT(dev.mem_bandwidth, 0.0);
  return static_cast<double>(bytes) /
         (dev.mem_bandwidth * dev.gather_efficiency);
}

double CostModel::StreamSeconds(uint64_t bytes, const DeviceSpec& dev) const {
  FAE_CHECK_GT(dev.mem_bandwidth, 0.0);
  return static_cast<double>(bytes) /
         (dev.mem_bandwidth * dev.stream_efficiency);
}

double CostModel::PcieTransferSeconds(uint64_t bytes) const {
  if (bytes == 0) return 0.0;
  return sys_.pcie.host_sync_seconds + sys_.pcie.latency +
         static_cast<double>(bytes) / sys_.pcie.bandwidth;
}

namespace {

// Ring all-reduce over one link tier: 2*(n-1)/n of the payload per rank,
// in 2*(n-1) latency-bound steps.
double RingAllReduce(uint64_t bytes, int n, const LinkSpec& link) {
  if (n <= 1 || bytes == 0) return 0.0;
  const double volume =
      2.0 * (n - 1) / static_cast<double>(n) * static_cast<double>(bytes);
  return 2.0 * (n - 1) * link.latency + volume / link.bandwidth;
}

}  // namespace

double CostModel::AllReduceSeconds(uint64_t bytes) const {
  if (bytes == 0) return 0.0;
  const double intra = RingAllReduce(bytes, sys_.num_gpus, sys_.nvlink);
  if (sys_.num_nodes <= 1) return intra;
  // Hierarchical: reduce-scatter/allgather within the node, ring across
  // nodes on each node's 1/g shard, then the intra stage's broadcast half
  // (already folded into `intra`'s 2x volume).
  const uint64_t shard =
      bytes / static_cast<uint64_t>(std::max(1, sys_.num_gpus));
  return intra + RingAllReduce(shard, sys_.num_nodes, sys_.network);
}

double CostModel::NetworkTransferSeconds(uint64_t bytes) const {
  if (bytes == 0) return 0.0;
  return sys_.network.latency +
         static_cast<double>(bytes) / sys_.network.bandwidth;
}

double CostModel::BusyEnergyJoules(double seconds,
                                   const DeviceSpec& dev) const {
  return seconds * (dev.busy_watts - dev.idle_watts);
}

double CostModel::AverageGpuWatts(double wall_seconds,
                                  double gpu_busy_seconds,
                                  double comm_seconds) const {
  if (wall_seconds <= 0.0) return 0.0;
  const double busy = std::min(gpu_busy_seconds, wall_seconds);
  const double comm = std::min(comm_seconds, wall_seconds);
  const double energy =
      sys_.gpu.idle_watts * wall_seconds +
      (sys_.gpu.busy_watts - sys_.gpu.idle_watts) * busy +
      sys_.pcie.endpoint_active_watts * comm;
  return energy / wall_seconds;
}

}  // namespace fae
