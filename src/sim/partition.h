#ifndef FAE_SIM_PARTITION_H_
#define FAE_SIM_PARTITION_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace fae {

/// A placement of weighted items (embedding tables) onto `num_bins`
/// devices.
struct Partition {
  /// bin_of[i] = device holding item i.
  std::vector<int> bin_of;
  /// Total weight per device.
  std::vector<uint64_t> bin_weight;

  uint64_t MaxWeight() const;
  /// max / mean — 1.0 is perfectly balanced; the model-parallel trainer
  /// charges its per-device work scaled by this factor.
  double Imbalance() const;
};

/// Longest-processing-time greedy partition: sort items by descending
/// weight, always placing into the lightest bin. The standard heuristic
/// recommendation systems use to shard embedding tables across devices
/// (guaranteed within 4/3 of the optimal makespan).
Partition PartitionLpt(const std::vector<uint64_t>& weights, int num_bins);

/// How the trainer lays the hot embedding slice out across the cluster's
/// GPUs (TrainOptions::sharding, `fae train --sharding=`).
enum class ShardingMode : int {
  kReplicate = 0,  // full replica on every GPU (the PR-8 status quo)
  kLpt,            // whole tables LPT-sharded by expected lookup mass
  kStatistical,    // hottest rows replicated, warm rows range-sharded by
                   // CDF mass (RecShard-style, core/shard_planner.h)
};

std::string_view ShardingModeName(ShardingMode mode);
/// Parses "replicate" / "lpt" / "statistical"; returns false otherwise.
bool ParseShardingMode(std::string_view name, ShardingMode* out);

/// Where each hot embedding row lives under --sharding=lpt|statistical:
/// a per-table map from row ranges to owning devices plus a replicated-row
/// bitmap, with the expected lookup mass (calibration access counts) each
/// device serves. Cold rows stay CPU-resident and are not described here.
struct ShardedPlacement {
  ShardingMode mode = ShardingMode::kReplicate;
  int num_devices = 1;

  /// Per-table row cuts, ascending, num_devices + 1 entries: sharded rows
  /// in [cuts[d], cuts[d+1]) belong to device d. Empty when the table has
  /// no sharded rows (fully replicated or fully cold).
  std::vector<std::vector<uint32_t>> cuts;
  /// Per-table replicated-row bitmap (1 byte per row, matching the HotSet
  /// mask layout). Empty for tables covered by `all_replicated`.
  std::vector<std::vector<uint8_t>> replicated;
  /// Per-table flag: 1 = the whole table is replicated on every device
  /// (small all-hot tables get no bitmap).
  std::vector<uint8_t> all_replicated;

  /// Expected lookup mass (summed access counts) over the sharded rows
  /// each device owns, and over the replicated set (served locally on
  /// every device, so it spreads evenly across the batch shards).
  std::vector<uint64_t> device_mass;
  std::vector<uint64_t> device_rows;
  uint64_t replicated_mass = 0;
  uint64_t replicated_rows = 0;

  size_t num_tables() const { return cuts.size(); }
  bool IsReplicated(size_t table, uint32_t row) const;
  /// Owning device of a sharded row, -1 when the table has no shard map.
  /// Check IsReplicated first: replicated rows live everywhere.
  int DeviceOf(size_t table, uint32_t row) const;

  /// max / mean of the expected per-device lookup mass, counting each
  /// device's equal 1/N share of the replicated mass. 1.0 is perfectly
  /// balanced; >= 1.0 always (1.0 when nothing is placed).
  double Imbalance() const;

  uint64_t ReplicatedBytes(size_t dim) const;
  uint64_t MaxShardRows() const;
  uint64_t MaxShardBytes(size_t dim) const;
};

}  // namespace fae

#endif  // FAE_SIM_PARTITION_H_
