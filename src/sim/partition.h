#ifndef FAE_SIM_PARTITION_H_
#define FAE_SIM_PARTITION_H_

#include <cstdint>
#include <vector>

namespace fae {

/// A placement of weighted items (embedding tables) onto `num_bins`
/// devices.
struct Partition {
  /// bin_of[i] = device holding item i.
  std::vector<int> bin_of;
  /// Total weight per device.
  std::vector<uint64_t> bin_weight;

  uint64_t MaxWeight() const;
  /// max / mean — 1.0 is perfectly balanced; the model-parallel trainer
  /// charges its per-device work scaled by this factor.
  double Imbalance() const;
};

/// Longest-processing-time greedy partition: sort items by descending
/// weight, always placing into the lightest bin. The standard heuristic
/// recommendation systems use to shard embedding tables across devices
/// (guaranteed within 4/3 of the optimal makespan).
Partition PartitionLpt(const std::vector<uint64_t>& weights, int num_bins);

}  // namespace fae

#endif  // FAE_SIM_PARTITION_H_
