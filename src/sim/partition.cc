#include "sim/partition.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace fae {

uint64_t Partition::MaxWeight() const {
  uint64_t mx = 0;
  for (uint64_t w : bin_weight) mx = std::max(mx, w);
  return mx;
}

double Partition::Imbalance() const {
  if (bin_weight.empty()) return 1.0;
  uint64_t total = 0;
  for (uint64_t w : bin_weight) total += w;
  if (total == 0) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(bin_weight.size());
  return static_cast<double>(MaxWeight()) / mean;
}

Partition PartitionLpt(const std::vector<uint64_t>& weights, int num_bins) {
  FAE_CHECK_GE(num_bins, 1);
  Partition p;
  p.bin_of.assign(weights.size(), 0);
  p.bin_weight.assign(num_bins, 0);

  std::vector<size_t> order(weights.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (weights[a] != weights[b]) return weights[a] > weights[b];
    return a < b;  // deterministic tie-break
  });
  for (size_t item : order) {
    int lightest = 0;
    for (int b = 1; b < num_bins; ++b) {
      if (p.bin_weight[b] < p.bin_weight[lightest]) lightest = b;
    }
    p.bin_of[item] = lightest;
    p.bin_weight[lightest] += weights[item];
  }
  return p;
}

}  // namespace fae
