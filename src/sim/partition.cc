#include "sim/partition.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace fae {

uint64_t Partition::MaxWeight() const {
  uint64_t mx = 0;
  for (uint64_t w : bin_weight) mx = std::max(mx, w);
  return mx;
}

double Partition::Imbalance() const {
  if (bin_weight.empty()) return 1.0;
  uint64_t total = 0;
  for (uint64_t w : bin_weight) total += w;
  if (total == 0) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(bin_weight.size());
  return static_cast<double>(MaxWeight()) / mean;
}

Partition PartitionLpt(const std::vector<uint64_t>& weights, int num_bins) {
  FAE_CHECK_GE(num_bins, 1);
  Partition p;
  p.bin_of.assign(weights.size(), 0);
  p.bin_weight.assign(num_bins, 0);

  std::vector<size_t> order(weights.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (weights[a] != weights[b]) return weights[a] > weights[b];
    return a < b;  // deterministic tie-break
  });
  for (size_t item : order) {
    int lightest = 0;
    for (int b = 1; b < num_bins; ++b) {
      if (p.bin_weight[b] < p.bin_weight[lightest]) lightest = b;
    }
    p.bin_of[item] = lightest;
    p.bin_weight[lightest] += weights[item];
  }
  return p;
}

std::string_view ShardingModeName(ShardingMode mode) {
  switch (mode) {
    case ShardingMode::kReplicate:
      return "replicate";
    case ShardingMode::kLpt:
      return "lpt";
    case ShardingMode::kStatistical:
      return "statistical";
  }
  return "unknown";
}

bool ParseShardingMode(std::string_view name, ShardingMode* out) {
  if (name == "replicate") {
    *out = ShardingMode::kReplicate;
  } else if (name == "lpt") {
    *out = ShardingMode::kLpt;
  } else if (name == "statistical") {
    *out = ShardingMode::kStatistical;
  } else {
    return false;
  }
  return true;
}

bool ShardedPlacement::IsReplicated(size_t table, uint32_t row) const {
  if (table < all_replicated.size() && all_replicated[table]) return true;
  if (table >= replicated.size()) return false;
  const std::vector<uint8_t>& mask = replicated[table];
  return row < mask.size() && mask[row] != 0;
}

int ShardedPlacement::DeviceOf(size_t table, uint32_t row) const {
  if (table >= cuts.size() || cuts[table].empty()) return -1;
  const std::vector<uint32_t>& c = cuts[table];
  // c has num_devices + 1 ascending entries; find d with c[d] <= row <
  // c[d+1]. Rows past the last cut clamp to the last device.
  const auto it = std::upper_bound(c.begin(), c.end(), row);
  const int d = static_cast<int>(it - c.begin()) - 1;
  return std::clamp(d, 0, num_devices - 1);
}

double ShardedPlacement::Imbalance() const {
  if (device_mass.empty()) return 1.0;
  // Replicated lookups are served locally on every device, so each device
  // carries an equal 1/N share of that mass on top of its own shards.
  const double rep_share = static_cast<double>(replicated_mass) /
                           static_cast<double>(device_mass.size());
  double total = 0.0;
  double mx = 0.0;
  for (uint64_t m : device_mass) {
    const double load = static_cast<double>(m) + rep_share;
    total += load;
    mx = std::max(mx, load);
  }
  if (total <= 0.0) return 1.0;
  const double mean = total / static_cast<double>(device_mass.size());
  return mx / mean;
}

uint64_t ShardedPlacement::ReplicatedBytes(size_t dim) const {
  return replicated_rows * dim * sizeof(float);
}

uint64_t ShardedPlacement::MaxShardRows() const {
  uint64_t mx = 0;
  for (uint64_t r : device_rows) mx = std::max(mx, r);
  return mx;
}

uint64_t ShardedPlacement::MaxShardBytes(size_t dim) const {
  return MaxShardRows() * dim * sizeof(float);
}

}  // namespace fae
