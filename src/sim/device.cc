#include "sim/device.h"

namespace fae {

DeviceSpec MakeXeonSilver4116() {
  DeviceSpec d;
  d.name = "Intel Xeon Silver 4116";
  d.kind = DeviceSpec::Kind::kCpu;
  // 12 cores x 2.1 GHz x AVX-512 (2x FMA uncommon on Silver; one 512-bit
  // FMA unit -> 32 fp32 FLOP/cycle/core) ~= 0.8 TFLOP/s peak.
  d.peak_flops = 0.8e12;
  d.dense_efficiency = 0.35;
  // 6 DDR4-2666 channels ~= 128 GB/s peak; random gathers fare poorly.
  d.mem_bandwidth = 128e9;
  d.stream_efficiency = 0.5;
  d.gather_efficiency = 0.12;
  d.sparse_update_overhead = 12.0;
  d.mem_capacity = 768ULL << 30;  // Table II: 768 GB
  d.busy_watts = 85.0;
  d.idle_watts = 30.0;
  return d;
}

DeviceSpec MakeTeslaV100() {
  DeviceSpec d;
  d.name = "Nvidia Tesla V100-16GB";
  d.kind = DeviceSpec::Kind::kGpu;
  d.peak_flops = 14e12;  // fp32
  d.dense_efficiency = 0.45;
  d.half_batch = 1024;
  d.mem_bandwidth = 900e9;  // HBM2
  d.stream_efficiency = 0.7;
  d.gather_efficiency = 0.35;
  d.mem_capacity = 16ULL << 30;
  // Calibrated to the paper's measured per-GPU draw (~56-62 W, Table VI):
  // a V100 held at P0 idles near 50 W, and the short, memory-bound,
  // low-occupancy recommender kernels add only a few watts on top — the
  // measured numbers sit just above P0 idle, and the baseline-vs-FAE gap
  // tracks communication activity (LinkSpec::endpoint_active_watts).
  d.busy_watts = 53.0;
  d.idle_watts = 50.0;
  return d;
}

LinkSpec MakePcieGen3x16() {
  LinkSpec l;
  l.name = "PCIe 3.0 x16";
  l.bandwidth = 12e9;  // ~12 GB/s achievable of 16 GB/s raw
  l.latency = 10e-6;
  l.host_sync_seconds = 25e-6;
  l.joules_per_byte = 60e-12;
  l.endpoint_active_watts = 70.0;
  return l;
}

LinkSpec MakeNvlink2() {
  LinkSpec l;
  l.name = "NVLink 2.0";
  l.bandwidth = 130e9;  // achievable aggregate per GPU
  l.latency = 5e-6;
  l.joules_per_byte = 8e-12;
  return l;
}

LinkSpec MakeDatacenterNetwork() {
  LinkSpec l;
  l.name = "100GbE RDMA";
  l.bandwidth = 11e9;  // ~11 GB/s achievable of 12.5 GB/s raw
  l.latency = 8e-6;
  l.joules_per_byte = 100e-12;
  return l;
}

SystemSpec MakePaperServer(int num_gpus) {
  SystemSpec s;
  s.cpu = MakeXeonSilver4116();
  s.gpu = MakeTeslaV100();
  s.num_gpus = num_gpus;
  s.pcie = MakePcieGen3x16();
  s.nvlink = MakeNvlink2();
  s.network = MakeDatacenterNetwork();
  return s;
}

SystemSpec MakeMultiNodeCluster(int num_nodes, int gpus_per_node) {
  SystemSpec s = MakePaperServer(gpus_per_node);
  s.num_nodes = num_nodes;
  return s;
}

}  // namespace fae
