#ifndef FAE_SIM_COST_MODEL_H_
#define FAE_SIM_COST_MODEL_H_

#include <cstdint>

#include "sim/device.h"
#include "sim/timeline.h"

namespace fae {

/// Converts work units (FLOPs, bytes) into modeled seconds against a
/// SystemSpec. All first-principles formulas; calibration constants live in
/// the DeviceSpec presets (sim/device.cc), not here.
class CostModel {
 public:
  explicit CostModel(SystemSpec system) : sys_(std::move(system)) {}

  const SystemSpec& system() const { return sys_; }

  /// Dense math (GEMMs) on `dev` at full occupancy.
  double DenseComputeSeconds(uint64_t flops, const DeviceSpec& dev) const;

  /// Dense math on `dev` when each kernel only sees `per_device_batch`
  /// rows; small batches under-fill GPUs (utilization = b/(b+half_batch)).
  double DenseComputeSeconds(uint64_t flops, uint64_t per_device_batch,
                             const DeviceSpec& dev) const;

  /// Random row gathers/scatters (embedding lookups) on `dev`.
  double GatherSeconds(uint64_t bytes, const DeviceSpec& dev) const;

  /// Streaming reads/writes (optimizer parameter sweeps) on `dev`.
  double StreamSeconds(uint64_t bytes, const DeviceSpec& dev) const;

  /// One CPU<->GPU transfer of `bytes` over PCIe.
  double PcieTransferSeconds(uint64_t bytes) const;

  /// All-reduce of `bytes` across every rank of the cluster. Single node:
  /// NVLink ring. Multi-node: hierarchical — intra-node NVLink ring, then
  /// an inter-node ring over the (much slower) network, then intra-node
  /// broadcast; the network stage dominates, which is why the paper cites
  /// GPU-GPU communication reaching 60% in distributed training.
  double AllReduceSeconds(uint64_t bytes) const;

  /// One node-to-node transfer of `bytes` over the cluster network.
  double NetworkTransferSeconds(uint64_t bytes) const;

  /// Energy (J) drawn by `dev` when busy for `seconds`, above idle.
  double BusyEnergyJoules(double seconds, const DeviceSpec& dev) const;

  /// Average per-GPU power (the paper's Table VI metric) over a run of
  /// `wall_seconds` during which each GPU computed for `gpu_busy_seconds`
  /// and PCIe traffic kept it communication-active for `comm_seconds`.
  double AverageGpuWatts(double wall_seconds, double gpu_busy_seconds,
                         double comm_seconds) const;

 private:
  SystemSpec sys_;
};

}  // namespace fae

#endif  // FAE_SIM_COST_MODEL_H_
