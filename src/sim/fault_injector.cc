#include "sim/fault_injector.h"

#include <cstdlib>
#include <limits>

#include "util/string_util.h"

namespace fae {
namespace {

// Parses a non-negative integer covering the whole of `text`. Overflow
// past uint64 is reported as failure, not silently wrapped.
bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (std::numeric_limits<uint64_t>::max() - digit) / 10) {
      return false;  // overflow
    }
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool ParseDouble(std::string_view text, double* out) {
  if (text.empty()) return false;
  const std::string copy(text);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) return false;
  *out = value;
  return true;
}

bool KindTakesStall(FaultKind kind) {
  return kind == FaultKind::kLinkStall || kind == FaultKind::kRecalStall;
}

bool KindTakesRepeat(FaultKind kind) {
  return kind == FaultKind::kDeviceTransient ||
         kind == FaultKind::kLookupLoss;
}

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDeviceTransient:
      return "device";
    case FaultKind::kLinkStall:
      return "stall";
    case FaultKind::kCorruptSync:
      return "corrupt";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRecalStall:
      return "recal-stall";
    case FaultKind::kSwapCrash:
      return "swap-crash";
    case FaultKind::kLookupLoss:
      return "lookup-loss";
  }
  return "unknown";
}

FaultInjector::FaultInjector(std::vector<FaultEvent> events)
    : events_(std::move(events)), delivered_(events_.size(), false) {}

StatusOr<FaultInjector> FaultInjector::Parse(const std::string& plan) {
  if (plan.empty()) {
    return Status::InvalidArgument(
        "empty fault plan (omit the flag entirely to inject no faults)");
  }
  std::vector<FaultEvent> events;
  for (const std::string& spec : Split(plan, ',')) {
    if (spec.empty()) {
      return Status::InvalidArgument(
          "fault plan has an empty spec (trailing or doubled comma?)");
    }
    const size_t at = spec.find('@');
    if (at == std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("fault spec '%s' is missing '@step'", spec.c_str()));
    }
    FaultEvent event;
    const std::string kind = spec.substr(0, at);
    if (kind == "device") {
      event.kind = FaultKind::kDeviceTransient;
    } else if (kind == "stall") {
      event.kind = FaultKind::kLinkStall;
      event.stall_seconds = 0.1;  // default stall when no ':seconds' given
    } else if (kind == "corrupt") {
      event.kind = FaultKind::kCorruptSync;
    } else if (kind == "crash") {
      event.kind = FaultKind::kCrash;
    } else if (kind == "recal-stall") {
      event.kind = FaultKind::kRecalStall;
      event.stall_seconds = 1.0;  // long enough to miss typical deadlines
    } else if (kind == "swap-crash") {
      event.kind = FaultKind::kSwapCrash;
    } else if (kind == "lookup-loss") {
      event.kind = FaultKind::kLookupLoss;
    } else {
      return Status::InvalidArgument(StrFormat(
          "unknown fault kind '%s' (want device|stall|corrupt|crash|"
          "recal-stall|swap-crash|lookup-loss)",
          kind.c_str()));
    }

    std::string rest = spec.substr(at + 1);
    // Optional 'xN' repeat suffix (device / lookup-loss only).
    const size_t x = rest.rfind('x');
    if (x != std::string::npos) {
      uint64_t times = 0;
      if (!ParseU64(std::string_view(rest).substr(x + 1), &times) ||
          times == 0 ||
          times > std::numeric_limits<uint32_t>::max()) {
        return Status::InvalidArgument(StrFormat(
            "fault spec '%s' has a bad repeat count (want 1..2^32-1)",
            spec.c_str()));
      }
      if (!KindTakesRepeat(event.kind)) {
        return Status::InvalidArgument(StrFormat(
            "fault spec '%s': 'xN' only applies to device and lookup-loss "
            "faults",
            spec.c_str()));
      }
      event.times = static_cast<uint32_t>(times);
      rest = rest.substr(0, x);
    }
    // Optional ':seconds' stall duration.
    const size_t colon = rest.find(':');
    if (colon != std::string::npos) {
      if (!KindTakesStall(event.kind)) {
        return Status::InvalidArgument(StrFormat(
            "fault spec '%s': ':seconds' only applies to stall and "
            "recal-stall faults",
            spec.c_str()));
      }
      if (!ParseDouble(std::string_view(rest).substr(colon + 1),
                       &event.stall_seconds) ||
          event.stall_seconds < 0.0) {
        return Status::InvalidArgument(StrFormat(
            "fault spec '%s' has a bad stall duration", spec.c_str()));
      }
      rest = rest.substr(0, colon);
    }
    if (!ParseU64(rest, &event.step)) {
      return Status::InvalidArgument(
          StrFormat("fault spec '%s' has a bad step", spec.c_str()));
    }
    for (const FaultEvent& prior : events) {
      if (prior.kind == event.kind && prior.step == event.step) {
        return Status::InvalidArgument(StrFormat(
            "duplicate fault '%s@%llu' (each kind fires at most once per "
            "step)",
            std::string(FaultKindName(event.kind)).c_str(),
            static_cast<unsigned long long>(event.step)));
      }
    }
    events.push_back(event);
  }
  return FaultInjector(std::move(events));
}

void FaultInjector::SkipUntil(uint64_t step) {
  for (size_t i = 0; i < events_.size(); ++i) {
    if (events_[i].step < step) delivered_[i] = true;
  }
}

std::vector<FaultEvent> FaultInjector::Drain(uint64_t step) {
  std::vector<FaultEvent> due;
  for (size_t i = 0; i < events_.size(); ++i) {
    if (!delivered_[i] && events_[i].step == step) {
      delivered_[i] = true;
      due.push_back(events_[i]);
    }
  }
  return due;
}

}  // namespace fae
