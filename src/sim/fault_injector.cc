#include "sim/fault_injector.h"

#include <cstdlib>

#include "util/string_util.h"

namespace fae {
namespace {

// Parses a non-negative integer covering the whole of `text`.
bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool ParseDouble(std::string_view text, double* out) {
  if (text.empty()) return false;
  const std::string copy(text);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) return false;
  *out = value;
  return true;
}

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDeviceTransient:
      return "device";
    case FaultKind::kLinkStall:
      return "stall";
    case FaultKind::kCorruptSync:
      return "corrupt";
    case FaultKind::kCrash:
      return "crash";
  }
  return "unknown";
}

FaultInjector::FaultInjector(std::vector<FaultEvent> events)
    : events_(std::move(events)), delivered_(events_.size(), false) {}

StatusOr<FaultInjector> FaultInjector::Parse(const std::string& plan) {
  std::vector<FaultEvent> events;
  for (const std::string& spec : Split(plan, ',')) {
    if (spec.empty()) continue;
    const size_t at = spec.find('@');
    if (at == std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("fault spec '%s' is missing '@step'", spec.c_str()));
    }
    FaultEvent event;
    const std::string kind = spec.substr(0, at);
    if (kind == "device") {
      event.kind = FaultKind::kDeviceTransient;
    } else if (kind == "stall") {
      event.kind = FaultKind::kLinkStall;
      event.stall_seconds = 0.1;  // default stall when no ':seconds' given
    } else if (kind == "corrupt") {
      event.kind = FaultKind::kCorruptSync;
    } else if (kind == "crash") {
      event.kind = FaultKind::kCrash;
    } else {
      return Status::InvalidArgument(StrFormat(
          "unknown fault kind '%s' (want device|stall|corrupt|crash)",
          kind.c_str()));
    }

    std::string rest = spec.substr(at + 1);
    // Optional 'xN' repeat suffix (device only).
    const size_t x = rest.rfind('x');
    if (x != std::string::npos) {
      uint64_t times = 0;
      if (!ParseU64(std::string_view(rest).substr(x + 1), &times) ||
          times == 0) {
        return Status::InvalidArgument(StrFormat(
            "fault spec '%s' has a bad repeat count", spec.c_str()));
      }
      if (event.kind != FaultKind::kDeviceTransient) {
        return Status::InvalidArgument(StrFormat(
            "fault spec '%s': 'xN' only applies to device faults",
            spec.c_str()));
      }
      event.times = static_cast<uint32_t>(times);
      rest = rest.substr(0, x);
    }
    // Optional ':seconds' stall duration.
    const size_t colon = rest.find(':');
    if (colon != std::string::npos) {
      if (event.kind != FaultKind::kLinkStall) {
        return Status::InvalidArgument(StrFormat(
            "fault spec '%s': ':seconds' only applies to stalls",
            spec.c_str()));
      }
      if (!ParseDouble(std::string_view(rest).substr(colon + 1),
                       &event.stall_seconds) ||
          event.stall_seconds < 0.0) {
        return Status::InvalidArgument(StrFormat(
            "fault spec '%s' has a bad stall duration", spec.c_str()));
      }
      rest = rest.substr(0, colon);
    }
    if (!ParseU64(rest, &event.step)) {
      return Status::InvalidArgument(
          StrFormat("fault spec '%s' has a bad step", spec.c_str()));
    }
    events.push_back(event);
  }
  return FaultInjector(std::move(events));
}

void FaultInjector::SkipUntil(uint64_t step) {
  for (size_t i = 0; i < events_.size(); ++i) {
    if (events_[i].step < step) delivered_[i] = true;
  }
}

std::vector<FaultEvent> FaultInjector::Drain(uint64_t step) {
  std::vector<FaultEvent> due;
  for (size_t i = 0; i < events_.size(); ++i) {
    if (!delivered_[i] && events_[i].step == step) {
      delivered_[i] = true;
      due.push_back(events_[i]);
    }
  }
  return due;
}

}  // namespace fae
