#ifndef FAE_SIM_TIMELINE_H_
#define FAE_SIM_TIMELINE_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace fae {

/// Training-phase taxonomy used in the paper's latency breakdown (Fig 14).
enum class Phase : int {
  kEmbeddingForward = 0,   // embedding bag lookups + pooling
  kMlpForward,             // bottom/top MLP (and attention) forward
  kMlpBackward,            // dense backward
  kEmbeddingBackward,      // scatter of embedding gradients
  kOptimizerDense,         // SGD over MLP parameters
  kOptimizerSparse,        // SGD over touched embedding rows
  kCpuGpuTransfer,         // activations/gradients over PCIe
  kAllReduce,              // gradient all-reduce over NVLink
  kEmbeddingSync,          // FAE-only: hot-table sync at hot<->cold swaps
  kNetwork,                // inter-node traffic (multi-node clusters only)
  kFaultRecovery,          // retry backoff + re-sync after injected faults
  kInputPrep,              // mini-batch gather/pack into staging buffers
  kNumPhases,
};

std::string_view PhaseName(Phase phase);

/// Accumulates modeled seconds per phase plus per-device busy time and
/// link traffic, from which wall time, breakdowns (Fig 14), communication
/// tables (Table V) and power (Table VI) are derived.
class Timeline {
 public:
  /// Accumulator snapshot for checkpoint/resume: restoring it reproduces
  /// the phase/traffic/busy-time accumulators of an uninterrupted run.
  ///
  /// Deliberately excludes the overlap accumulator (AddOverlapSavedSeconds):
  /// phase charges are identical across all --pipeline modes, so checkpoints
  /// written by a serial and a pipelined run are byte-identical — the
  /// pipeline determinism contract (DESIGN.md §11). The cost: a resumed
  /// pipelined run's overlap wall stats restart from zero, so it reports
  /// less overlap_saved_seconds (hence higher modeled wall / lower
  /// OverlapFraction) than the same run uninterrupted.
  struct State {
    std::array<double, static_cast<int>(Phase::kNumPhases)> seconds{};
    double wall_seconds = 0.0;
    double cpu_busy = 0.0;
    double gpu_busy = 0.0;
    uint64_t pcie_bytes = 0;
    uint64_t nvlink_bytes = 0;
    uint64_t network_bytes = 0;
  };

  State state() const {
    return State{seconds_,    wall_seconds_, cpu_busy_,
                 gpu_busy_,   pcie_bytes_,   nvlink_bytes_,
                 network_bytes_};
  }
  void set_state(const State& state) {
    seconds_ = state.seconds;
    wall_seconds_ = state.wall_seconds;
    cpu_busy_ = state.cpu_busy;
    gpu_busy_ = state.gpu_busy;
    pcie_bytes_ = state.pcie_bytes;
    nvlink_bytes_ = state.nvlink_bytes;
    network_bytes_ = state.network_bytes;
  }

  void Charge(Phase phase, double seconds) {
    seconds_[static_cast<int>(phase)] += seconds;
  }

  /// Also attributes the time as busy time on CPU or GPU.
  void ChargeCpu(Phase phase, double seconds) {
    Charge(phase, seconds);
    cpu_busy_ += seconds;
  }
  void ChargeGpu(Phase phase, double seconds) {
    Charge(phase, seconds);
    gpu_busy_ += seconds;
  }

  void AddPcieBytes(uint64_t bytes) { pcie_bytes_ += bytes; }
  void AddNvlinkBytes(uint64_t bytes) { nvlink_bytes_ += bytes; }
  void AddNetworkBytes(uint64_t bytes) { network_bytes_ += bytes; }

  double seconds(Phase phase) const {
    return seconds_[static_cast<int>(phase)];
  }

  /// Records explicit wall-clock time for overlapped execution models
  /// (pipelined baselines), where the wall is shorter than the phase sum
  /// because CPU and GPU phases run concurrently.
  void AddWallSeconds(double seconds) { wall_seconds_ += seconds; }

  /// Overlap accounting for the pipelined trainer (--pipeline): records
  /// modeled seconds *hidden* by overlapping work on disjoint resources
  /// (batch prefetch under compute, cold-CPU phases under hot-GPU phases,
  /// DMA syncs under compute). Phase charges always record the full device
  /// work; the saving is tracked separately so it can be subtracted from
  /// the wall without perturbing the per-phase breakdown — and so the
  /// checkpointed State stays identical across pipeline modes.
  void AddOverlapSavedSeconds(double seconds) { overlap_saved_ += seconds; }
  double overlap_saved_seconds() const { return overlap_saved_; }

  /// Lookahead-oracle cache accounting (engine/lookahead_cache.h). Like the
  /// overlap accumulator, all of it lives *outside* State: phase charges
  /// are identical cache-on and cache-off, and the cache's effect on the
  /// modeled wall is a separately-tracked credit — so checkpoints stay
  /// byte-identical across cache modes and a resume may switch them.
  /// The saving may go negative per event (boundary writebacks, an
  /// undersized budget): the net is honest, not clamped per step.
  struct CacheCounters {
    uint64_t hits = 0;             // lookups served from the GPU cache
    uint64_t misses = 0;           // lookups on the CPU fallback path
    uint64_t stale_refreshes = 0;  // resident rows refetched after a
                                   // master-side write invalidated them
    uint64_t prefetch_bytes = 0;   // rows shipped ahead of use
    uint64_t writeback_bytes = 0;  // dirty rows flushed on evict/boundary
    /// Cold-step CPU<->GPU transfer, plain vs with the cache (activation
    /// round trips scaled by the miss share, plus all cache DMA). The
    /// bench's ">= 2x transfer reduction" gate reads these.
    uint64_t plain_transfer_bytes = 0;
    uint64_t effective_transfer_bytes = 0;
  };
  void AddCacheSavedSeconds(double seconds) { cache_saved_ += seconds; }
  double cache_saved_seconds() const { return cache_saved_; }
  CacheCounters& cache_counters() { return cache_counters_; }
  const CacheCounters& cache_counters() const { return cache_counters_; }

  /// Sharded-placement accounting (--sharding=lpt|statistical): the real
  /// timeline always carries the replicate-mode charges; the trainer
  /// prices the sharded variant of each hot step and sync into a scratch
  /// timeline and records the difference here. Outside State like the
  /// overlap and cache accumulators, so checkpoints stay byte-identical
  /// across sharding modes and a resume may switch them. Negative totals
  /// are expected — whole-table LPT typically *loses* to replication (the
  /// all-to-all it adds dwarfs the sync it saves) and that loss must show
  /// in the modeled wall.
  void AddShardingSavedSeconds(double seconds) { sharding_saved_ += seconds; }
  double sharding_saved_seconds() const { return sharding_saved_; }

  /// Stale-skip accounting (--stale-skip=cold|all): per-row optimizer
  /// updates skipped for rows whose update-magnitude EMA fell below the
  /// guard threshold (engine/staleness_tracker.h). The real timeline
  /// always carries the full backward+step charges; the trainer prices
  /// the skipped variant of each CPU step into a scratch timeline and
  /// records the difference here. Outside State like the other overlay
  /// accumulators, so checkpoints stay byte-identical across stale-skip
  /// modes and a resume may switch them — and so a second saved by the
  /// pipeline overlap is never hidden twice.
  struct StaleSkipCounters {
    uint64_t skipped_rows = 0;      // row-updates elided this run
    uint64_t updated_rows = 0;      // row-updates applied this run
    uint64_t reactivated_rows = 0;  // rows un-frozen by the accuracy guard
    uint64_t guard_tightens = 0;    // guard halved the threshold (loss rose)
    uint64_t guard_widens = 0;      // guard doubled it (steady improvement)
  };
  void AddStaleSkipSavedSeconds(double seconds) { stale_skip_saved_ += seconds; }
  double stale_skip_saved_seconds() const { return stale_skip_saved_; }
  StaleSkipCounters& stale_skip_counters() { return stale_skip_counters_; }
  const StaleSkipCounters& stale_skip_counters() const {
    return stale_skip_counters_;
  }

  /// TotalSeconds() minus the overlap, cache, sharding, and stale-skip
  /// savings: the modeled wall-clock of the pipelined execution. Equals
  /// TotalSeconds() when nothing overlapped and no overlay feature ran.
  double OverlappedTotalSeconds() const;

  /// Fraction of the serial wall-clock hidden by overlap, in [0, 1).
  double OverlapFraction() const;

  /// Modeled wall-clock: the explicit wall time when any was recorded
  /// (overlapped execution), otherwise the sum of all phases (the default
  /// synchronous pipeline).
  double TotalSeconds() const;

  /// Sum of per-phase seconds regardless of overlap (total device work).
  double PhaseSumSeconds() const;

  double cpu_busy_seconds() const { return cpu_busy_; }
  double gpu_busy_seconds() const { return gpu_busy_; }
  uint64_t pcie_bytes() const { return pcie_bytes_; }
  uint64_t nvlink_bytes() const { return nvlink_bytes_; }
  uint64_t network_bytes() const { return network_bytes_; }

  void Merge(const Timeline& other);

  /// Multi-line per-phase report with percentages.
  std::string Report() const;

 private:
  std::array<double, static_cast<int>(Phase::kNumPhases)> seconds_{};
  double wall_seconds_ = 0.0;
  /// Not part of State — see the State doc comment.
  double overlap_saved_ = 0.0;
  /// Not part of State either — see the CacheCounters doc comment.
  double cache_saved_ = 0.0;
  /// Not part of State either — see AddShardingSavedSeconds.
  double sharding_saved_ = 0.0;
  /// Not part of State either — see AddStaleSkipSavedSeconds.
  double stale_skip_saved_ = 0.0;
  CacheCounters cache_counters_;
  StaleSkipCounters stale_skip_counters_;
  double cpu_busy_ = 0.0;
  double gpu_busy_ = 0.0;
  uint64_t pcie_bytes_ = 0;
  uint64_t nvlink_bytes_ = 0;
  uint64_t network_bytes_ = 0;
};

}  // namespace fae

#endif  // FAE_SIM_TIMELINE_H_
