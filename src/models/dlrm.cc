#include "models/dlrm.h"

#include <algorithm>

#include "tensor/ops.h"
#include "util/logging.h"

namespace fae {

Dlrm::Dlrm(const DatasetSchema& schema, const ModelConfig& config,
           uint64_t seed)
    : schema_(schema),
      config_(config),
      bottom_([&] {
        Xoshiro256 rng(seed);
        return Mlp(config.bottom_mlp, rng, "bottom");
      }()),
      top_([&] {
        Xoshiro256 rng(seed + 1);
        return Mlp(config.top_mlp, rng, "top");
      }()) {
  FAE_CHECK_EQ(config_.bottom_mlp.front(), schema_.num_dense);
  FAE_CHECK_EQ(config_.bottom_mlp.back(), schema_.embedding_dim);
  FAE_CHECK_EQ(config_.top_mlp.front(), DlrmTopInputWidth(schema_));
  FAE_CHECK_EQ(config_.top_mlp.back(), 1u);
  Xoshiro256 rng(seed + 2);
  tables_.reserve(schema_.num_tables());
  for (uint64_t rows : schema_.table_rows) {
    tables_.emplace_back(rows, schema_.embedding_dim, rng);
  }
  // Fixed-shape workspace wiring; the tensors themselves size lazily.
  const size_t f = schema_.num_tables() + 1;
  emb_out_.resize(schema_.num_tables());
  features_.reserve(f);
  concat_blocks_.resize(2);
  split_widths_ = {schema_.embedding_dim, f * (f - 1) / 2};
  split_outs_ = {&g_bottom_direct_, &g_inter_};
  feat_grads_.resize(f);
}

const Tensor& Dlrm::TrainForward(const BatchView& batch,
                                 const std::vector<EmbeddingTable*>& tables) {
  FAE_CHECK_EQ(tables.size(), schema_.num_tables());
  const Tensor& bottom_out = bottom_.Forward(batch.dense);
  for (size_t t = 0; t < tables.size(); ++t) {
    EmbeddingBag::ForwardInto(emb_out_[t], *tables[t], batch.indices(t),
                              batch.offsets(t), pool_);
  }
  features_.clear();
  features_.push_back(&bottom_out);
  for (const Tensor& e : emb_out_) features_.push_back(&e);
  PairwiseDotInteractionInto(inter_, features_, pool_);
  concat_blocks_[0] = &bottom_out;
  concat_blocks_[1] = &inter_;
  ConcatColsInto(top_in_, concat_blocks_);
  return top_.Forward(top_in_);
}

StepResult Dlrm::StepImpl(const BatchView& batch,
                          const std::vector<EmbeddingTable*>& tables,
                          const SparseApplyFn* apply) {
  const Tensor& logits = TrainForward(batch, tables);
  BceWithLogitsInto(bce_, logits, batch.labels);

  // Top MLP backward.
  const Tensor& g_top_in = top_.Backward(bce_.grad_logits);
  const size_t d = schema_.embedding_dim;
  SplitColsInto(split_outs_, g_top_in, split_widths_);

  // Interaction backward. `features_` still points at this step's forward
  // activations (bottom out lives in the bottom MLP's head layer, which
  // the top MLP's backward does not touch).
  PairwiseDotInteractionBackwardInto(feat_grads_, g_inter_, features_,
                                     pool_);

  // Bottom MLP backward (direct concat path + interaction path).
  feat_grads_[0].Add(g_bottom_direct_);
  bottom_.Backward(feat_grads_[0]);

  // Embedding gradients: either materialize per-table SparseGrads or hand
  // each table's output gradient straight to the fused scatter+optimizer.
  StepResult result;
  result.loss = bce_.mean_loss;
  result.correct = bce_.correct;
  result.batch_size = batch.batch_size();
  if (apply != nullptr) {
    for (size_t t = 0; t < schema_.num_tables(); ++t) {
      (*apply)(t, feat_grads_[t + 1], batch.indices(t), batch.offsets(t));
    }
  } else {
    result.table_grads.reserve(schema_.num_tables());
    for (size_t t = 0; t < schema_.num_tables(); ++t) {
      result.table_grads.push_back(EmbeddingBag::Backward(
          feat_grads_[t + 1], batch.indices(t), batch.offsets(t), d, pool_));
    }
  }
  return result;
}

StepResult Dlrm::ForwardBackwardOn(
    const BatchView& batch, const std::vector<EmbeddingTable*>& tables) {
  return StepImpl(batch, tables, /*apply=*/nullptr);
}

StepResult Dlrm::ForwardBackwardFusedOn(
    const BatchView& batch, const std::vector<EmbeddingTable*>& tables,
    const SparseApplyFn& apply) {
  return StepImpl(batch, tables, &apply);
}

Tensor Dlrm::EvalLogits(const BatchView& batch) const {
  FAE_CHECK_EQ(schema_.num_tables(), tables_.size());
  Tensor bottom_out = bottom_.ForwardInference(batch.dense);
  std::vector<Tensor> emb_out;
  emb_out.reserve(tables_.size());
  for (size_t t = 0; t < tables_.size(); ++t) {
    emb_out.push_back(EmbeddingBag::Forward(tables_[t], batch.indices(t),
                                            batch.offsets(t), pool_));
  }
  std::vector<const Tensor*> features;
  features.reserve(1 + emb_out.size());
  features.push_back(&bottom_out);
  for (const Tensor& e : emb_out) features.push_back(&e);
  Tensor inter = PairwiseDotInteraction(features, pool_);
  Tensor top_in = ConcatCols({&bottom_out, &inter});
  return top_.ForwardInference(top_in);
}

std::vector<Parameter*> Dlrm::DenseParams() {
  std::vector<Parameter*> params = bottom_.Params();
  for (Parameter* p : top_.Params()) params.push_back(p);
  return params;
}

BatchWork Dlrm::Work(const BatchView& batch) const {
  BatchWork w;
  const size_t b = batch.batch_size();
  w.batch_size = b;
  const size_t d = schema_.embedding_dim;
  const size_t f = schema_.num_tables() + 1;
  w.forward_flops = bottom_.ForwardFlops(b) + top_.ForwardFlops(b) +
                    2ULL * b * (f * (f - 1) / 2) * d;  // interaction dots
  w.embedding_read_bytes = batch.TotalLookups() * d * sizeof(float);
  w.embedding_activation_bytes =
      static_cast<uint64_t>(b) * schema_.num_tables() * d * sizeof(float);
  w.dense_param_count = bottom_.NumParams() + top_.NumParams();
  for (size_t t = 0; t < schema_.num_tables(); ++t) {
    const std::span<const uint32_t> idx = batch.indices(t);
    // Sort-based distinct count into reusable scratch (setup-time path,
    // but no reason to pay an unordered_set's node churn).
    work_scratch_.assign(idx.begin(), idx.end());
    std::sort(work_scratch_.begin(), work_scratch_.end());
    const size_t distinct = static_cast<size_t>(
        std::unique(work_scratch_.begin(), work_scratch_.end()) -
        work_scratch_.begin());
    w.touched_rows += distinct;
    w.per_table_lookups.push_back(idx.size());
    w.per_table_touched.push_back(distinct);
  }
  w.touched_bytes = w.touched_rows * d * sizeof(float);
  return w;
}

}  // namespace fae
