#include "models/dlrm.h"

#include <unordered_set>

#include "tensor/loss.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace fae {

Dlrm::Dlrm(const DatasetSchema& schema, const ModelConfig& config,
           uint64_t seed)
    : schema_(schema),
      config_(config),
      bottom_([&] {
        Xoshiro256 rng(seed);
        return Mlp(config.bottom_mlp, rng, "bottom");
      }()),
      top_([&] {
        Xoshiro256 rng(seed + 1);
        return Mlp(config.top_mlp, rng, "top");
      }()) {
  FAE_CHECK_EQ(config_.bottom_mlp.front(), schema_.num_dense);
  FAE_CHECK_EQ(config_.bottom_mlp.back(), schema_.embedding_dim);
  FAE_CHECK_EQ(config_.top_mlp.front(), DlrmTopInputWidth(schema_));
  FAE_CHECK_EQ(config_.top_mlp.back(), 1u);
  Xoshiro256 rng(seed + 2);
  tables_.reserve(schema_.num_tables());
  for (uint64_t rows : schema_.table_rows) {
    tables_.emplace_back(rows, schema_.embedding_dim, rng);
  }
}

Tensor Dlrm::ForwardImpl(const MiniBatch& batch,
                         const std::vector<const EmbeddingTable*>& tables,
                         bool cache) {
  FAE_CHECK_EQ(tables.size(), schema_.num_tables());
  Tensor bottom_out = cache ? bottom_.Forward(batch.dense)
                            : bottom_.ForwardInference(batch.dense);
  std::vector<Tensor> emb_out;
  emb_out.reserve(tables.size());
  for (size_t t = 0; t < tables.size(); ++t) {
    emb_out.push_back(EmbeddingBag::Forward(*tables[t], batch.indices[t],
                                            batch.offsets[t], pool_));
  }
  std::vector<const Tensor*> features;
  features.reserve(1 + emb_out.size());
  features.push_back(&bottom_out);
  for (const Tensor& e : emb_out) features.push_back(&e);
  Tensor inter = PairwiseDotInteraction(features, pool_);
  Tensor top_in = ConcatCols({&bottom_out, &inter});
  Tensor logits =
      cache ? top_.Forward(top_in) : top_.ForwardInference(top_in);
  if (cache) {
    cached_bottom_out_ = std::move(bottom_out);
    cached_emb_out_ = std::move(emb_out);
  }
  return logits;
}

StepResult Dlrm::StepImpl(const MiniBatch& batch,
                          const std::vector<EmbeddingTable*>& tables,
                          const SparseApplyFn* apply) {
  std::vector<const EmbeddingTable*> ctables(tables.begin(), tables.end());
  Tensor logits = ForwardImpl(batch, ctables, /*cache=*/true);
  BceResult bce = BceWithLogits(logits, batch.labels);

  // Top MLP backward.
  Tensor g_top_in = top_.Backward(bce.grad_logits);
  const size_t d = schema_.embedding_dim;
  const size_t f = schema_.num_tables() + 1;
  std::vector<Tensor> split = SplitCols(g_top_in, {d, f * (f - 1) / 2});
  Tensor& g_bottom_direct = split[0];
  Tensor& g_inter = split[1];

  // Interaction backward.
  std::vector<const Tensor*> features;
  features.reserve(f);
  features.push_back(&cached_bottom_out_);
  for (const Tensor& e : cached_emb_out_) features.push_back(&e);
  std::vector<Tensor> feat_grads =
      PairwiseDotInteractionBackward(g_inter, features, pool_);

  // Bottom MLP backward (direct concat path + interaction path).
  feat_grads[0].Add(g_bottom_direct);
  bottom_.Backward(feat_grads[0]);

  // Embedding gradients: either materialize per-table SparseGrads or hand
  // each table's output gradient straight to the fused scatter+optimizer.
  StepResult result;
  result.loss = bce.mean_loss;
  result.correct = bce.correct;
  result.batch_size = batch.batch_size();
  if (apply != nullptr) {
    for (size_t t = 0; t < schema_.num_tables(); ++t) {
      (*apply)(t, feat_grads[t + 1], batch.indices[t], batch.offsets[t]);
    }
  } else {
    result.table_grads.reserve(schema_.num_tables());
    for (size_t t = 0; t < schema_.num_tables(); ++t) {
      result.table_grads.push_back(EmbeddingBag::Backward(
          feat_grads[t + 1], batch.indices[t], batch.offsets[t], d, pool_));
    }
  }
  return result;
}

StepResult Dlrm::ForwardBackwardOn(
    const MiniBatch& batch, const std::vector<EmbeddingTable*>& tables) {
  return StepImpl(batch, tables, /*apply=*/nullptr);
}

StepResult Dlrm::ForwardBackwardFusedOn(
    const MiniBatch& batch, const std::vector<EmbeddingTable*>& tables,
    const SparseApplyFn& apply) {
  return StepImpl(batch, tables, &apply);
}

Tensor Dlrm::EvalLogits(const MiniBatch& batch) const {
  std::vector<const EmbeddingTable*> ctables;
  ctables.reserve(tables_.size());
  for (const EmbeddingTable& t : tables_) ctables.push_back(&t);
  // ForwardImpl only mutates caches when cache=true, so the const_cast is
  // safe for the inference path.
  return const_cast<Dlrm*>(this)->ForwardImpl(batch, ctables,
                                              /*cache=*/false);
}

std::vector<Parameter*> Dlrm::DenseParams() {
  std::vector<Parameter*> params = bottom_.Params();
  for (Parameter* p : top_.Params()) params.push_back(p);
  return params;
}

BatchWork Dlrm::Work(const MiniBatch& batch) const {
  BatchWork w;
  const size_t b = batch.batch_size();
  w.batch_size = b;
  const size_t d = schema_.embedding_dim;
  const size_t f = schema_.num_tables() + 1;
  w.forward_flops = bottom_.ForwardFlops(b) + top_.ForwardFlops(b) +
                    2ULL * b * (f * (f - 1) / 2) * d;  // interaction dots
  w.embedding_read_bytes = batch.TotalLookups() * d * sizeof(float);
  w.embedding_activation_bytes =
      static_cast<uint64_t>(b) * schema_.num_tables() * d * sizeof(float);
  w.dense_param_count = bottom_.NumParams() + top_.NumParams();
  for (size_t t = 0; t < schema_.num_tables(); ++t) {
    std::unordered_set<uint32_t> distinct(batch.indices[t].begin(),
                                          batch.indices[t].end());
    w.touched_rows += distinct.size();
    w.per_table_lookups.push_back(batch.indices[t].size());
    w.per_table_touched.push_back(distinct.size());
  }
  w.touched_bytes = w.touched_rows * d * sizeof(float);
  return w;
}

}  // namespace fae
