#ifndef FAE_MODELS_TBSM_H_
#define FAE_MODELS_TBSM_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "models/model_config.h"
#include "models/rec_model.h"
#include "tensor/attention.h"
#include "tensor/mlp.h"

namespace fae {

/// Time-Based Sequence Model (Ishkhanov et al., the paper's RMC1):
/// DLRM-style embedding + MLP stack augmented with a deep attention layer
/// over each user's item history.
///
/// Input convention for sequential schemas: table 0 is the item table and
/// `indices[0]` carries the user's history with the *target* item last;
/// earlier entries (or, for singleton sequences, the target itself) form
/// the attention keys. Remaining tables contribute one pooled lookup each.
class Tbsm : public RecModel {
 public:
  Tbsm(const DatasetSchema& schema, const ModelConfig& config, uint64_t seed);

  StepResult ForwardBackwardOn(
      const MiniBatch& batch,
      const std::vector<EmbeddingTable*>& tables) override;

  Tensor EvalLogits(const MiniBatch& batch) const override;

  std::vector<Parameter*> DenseParams() override;
  std::vector<EmbeddingTable>& tables() override { return tables_; }
  const std::vector<EmbeddingTable>& tables() const override {
    return tables_;
  }
  size_t embedding_dim() const override { return schema_.embedding_dim; }
  BatchWork Work(const MiniBatch& batch) const override;

 private:
  struct SequenceView {
    // Per-sample positions into batch.indices[0].
    uint32_t begin = 0;   // first history index
    uint32_t target = 0;  // position of the target item
    uint32_t history_len = 0;
  };

  static std::vector<SequenceView> SplitSequences(const MiniBatch& batch);

  Tensor ForwardImpl(const MiniBatch& batch,
                     const std::vector<const EmbeddingTable*>& tables,
                     bool cache);

  DatasetSchema schema_;
  ModelConfig config_;
  Mlp bottom_;
  Mlp top_;
  /// Per-timestep transform over history embeddings (identity when the
  /// config leaves step_mlp empty).
  std::optional<Mlp> step_mlp_;
  std::vector<EmbeddingTable> tables_;

  // Forward caches consumed by the following backward (cache=true only).
  DotAttention attention_;
  Tensor cached_bottom_out_;
  std::vector<Tensor> cached_pooled_;  // tables 1..T-1
  Tensor cached_query_;
  std::vector<SequenceView> cached_seq_;
};

}  // namespace fae

#endif  // FAE_MODELS_TBSM_H_
