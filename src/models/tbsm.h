#ifndef FAE_MODELS_TBSM_H_
#define FAE_MODELS_TBSM_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "models/model_config.h"
#include "models/rec_model.h"
#include "tensor/attention.h"
#include "tensor/mlp.h"

namespace fae {

/// Time-Based Sequence Model (Ishkhanov et al., the paper's RMC1):
/// DLRM-style embedding + MLP stack augmented with a deep attention layer
/// over each user's item history.
///
/// Input convention for sequential schemas: table 0 is the item table and
/// `indices[0]` carries the user's history with the *target* item last;
/// earlier entries (or, for singleton sequences, the target itself) form
/// the attention keys. Remaining tables contribute one pooled lookup each.
class Tbsm : public RecModel {
 public:
  Tbsm(const DatasetSchema& schema, const ModelConfig& config, uint64_t seed);

  StepResult ForwardBackwardOn(
      const MiniBatch& batch,
      const std::vector<EmbeddingTable*>& tables) override;

  StepResult ForwardBackwardFusedOn(
      const MiniBatch& batch, const std::vector<EmbeddingTable*>& tables,
      const SparseApplyFn& apply) override;

  void SetThreadPool(ThreadPool* pool) override {
    pool_ = pool;
    bottom_.set_thread_pool(pool);
    top_.set_thread_pool(pool);
    if (step_mlp_) step_mlp_->set_thread_pool(pool);
  }

  Tensor EvalLogits(const MiniBatch& batch) const override;

  std::vector<Parameter*> DenseParams() override;
  std::vector<EmbeddingTable>& tables() override { return tables_; }
  const std::vector<EmbeddingTable>& tables() const override {
    return tables_;
  }
  size_t embedding_dim() const override { return schema_.embedding_dim; }
  BatchWork Work(const MiniBatch& batch) const override;

 private:
  struct SequenceView {
    // Per-sample positions into batch.indices[0].
    uint32_t begin = 0;   // first history index
    uint32_t target = 0;  // position of the target item
    uint32_t history_len = 0;
  };

  static std::vector<SequenceView> SplitSequences(const MiniBatch& batch);

  Tensor ForwardImpl(const MiniBatch& batch,
                     const std::vector<const EmbeddingTable*>& tables,
                     bool cache);

  // Shared forward+backward; when `apply` is non-null every table's sparse
  // backward (including the item table's synthesized scatter list) is
  // handed to it instead of materialized in the result.
  StepResult StepImpl(const MiniBatch& batch,
                      const std::vector<EmbeddingTable*>& tables,
                      const SparseApplyFn* apply);

  DatasetSchema schema_;
  ModelConfig config_;
  Mlp bottom_;
  Mlp top_;
  /// Per-timestep transform over history embeddings (identity when the
  /// config leaves step_mlp empty).
  std::optional<Mlp> step_mlp_;
  std::vector<EmbeddingTable> tables_;
  ThreadPool* pool_ = nullptr;  // not owned

  // Forward caches consumed by the following backward (cache=true only).
  DotAttention attention_;
  Tensor cached_bottom_out_;
  std::vector<Tensor> cached_pooled_;  // tables 1..T-1
  Tensor cached_query_;
  std::vector<SequenceView> cached_seq_;
};

}  // namespace fae

#endif  // FAE_MODELS_TBSM_H_
