#ifndef FAE_MODELS_TBSM_H_
#define FAE_MODELS_TBSM_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "models/model_config.h"
#include "models/rec_model.h"
#include "tensor/attention.h"
#include "tensor/mlp.h"

namespace fae {

/// Time-Based Sequence Model (Ishkhanov et al., the paper's RMC1):
/// DLRM-style embedding + MLP stack augmented with a deep attention layer
/// over each user's item history.
///
/// Input convention for sequential schemas: table 0 is the item table and
/// `indices[0]` carries the user's history with the *target* item last;
/// earlier entries (or, for singleton sequences, the target itself) form
/// the attention keys. Remaining tables contribute one pooled lookup each.
///
/// The variable-length history split keeps TBSM off the strict zero-alloc
/// path (per-sample history matrices are sized by the data); the dense
/// stacks it feeds (stacked history, top input) are members so the MLPs'
/// cached input views stay valid through Backward.
class Tbsm : public RecModel {
 public:
  Tbsm(const DatasetSchema& schema, const ModelConfig& config, uint64_t seed);

  StepResult ForwardBackwardOn(
      const BatchView& batch,
      const std::vector<EmbeddingTable*>& tables) override;

  StepResult ForwardBackwardFusedOn(
      const BatchView& batch, const std::vector<EmbeddingTable*>& tables,
      const SparseApplyFn& apply) override;

  void SetThreadPool(ThreadPool* pool) override {
    pool_ = pool;
    bottom_.set_thread_pool(pool);
    top_.set_thread_pool(pool);
    if (step_mlp_) step_mlp_->set_thread_pool(pool);
  }

  Tensor EvalLogits(const BatchView& batch) const override;

  std::vector<Parameter*> DenseParams() override;
  std::vector<EmbeddingTable>& tables() override { return tables_; }
  const std::vector<EmbeddingTable>& tables() const override {
    return tables_;
  }
  size_t embedding_dim() const override { return schema_.embedding_dim; }
  BatchWork Work(const BatchView& batch) const override;

 private:
  struct SequenceView {
    // Per-sample positions into batch.indices(0) — rebased to the batch
    // (the view's absolute CSR offsets are subtracted out).
    uint32_t begin = 0;   // first history index
    uint32_t target = 0;  // position of the target item
    uint32_t history_len = 0;
  };

  static std::vector<SequenceView> SplitSequences(const BatchView& batch);

  Tensor ForwardImpl(const BatchView& batch,
                     const std::vector<const EmbeddingTable*>& tables,
                     bool cache);

  // Shared forward+backward; when `apply` is non-null every table's sparse
  // backward (including the item table's synthesized scatter list) is
  // handed to it instead of materialized in the result.
  StepResult StepImpl(const BatchView& batch,
                      const std::vector<EmbeddingTable*>& tables,
                      const SparseApplyFn* apply);

  DatasetSchema schema_;
  ModelConfig config_;
  Mlp bottom_;
  Mlp top_;
  /// Per-timestep transform over history embeddings (identity when the
  /// config leaves step_mlp empty).
  std::optional<Mlp> step_mlp_;
  std::vector<EmbeddingTable> tables_;
  ThreadPool* pool_ = nullptr;  // not owned

  // Forward caches consumed by the following backward (cache=true only).
  // cached_stacked_ and cached_top_in_ back the step/top MLPs' input
  // views, so they must live here, not on the forward's stack.
  DotAttention attention_;
  Tensor cached_stacked_;
  Tensor cached_top_in_;
  std::vector<SequenceView> cached_seq_;
};

}  // namespace fae

#endif  // FAE_MODELS_TBSM_H_
