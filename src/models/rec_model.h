#ifndef FAE_MODELS_REC_MODEL_H_
#define FAE_MODELS_REC_MODEL_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "data/batch_view.h"
#include "data/minibatch.h"
#include "embedding/embedding_bag.h"
#include "embedding/embedding_table.h"
#include "tensor/linear.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace fae {

/// Outcome of one training step's forward+backward (before optimizers).
struct StepResult {
  double loss = 0.0;
  size_t correct = 0;
  size_t batch_size = 0;
  /// Per-table sparse gradients; dense parameter gradients are accumulated
  /// inside the model's Parameters.
  std::vector<SparseGrad> table_grads;
};

/// Work units of a batch, consumed by the simulation cost model.
struct BatchWork {
  /// Global batch size (the cost model derives per-GPU occupancy from it).
  uint64_t batch_size = 0;
  /// Dense-network FLOPs of the forward pass (backward is ~2x).
  uint64_t forward_flops = 0;
  /// Bytes gathered from embedding tables (lookups x dim x 4).
  uint64_t embedding_read_bytes = 0;
  /// Bytes of embedding activations shipped CPU->GPU in the baseline
  /// placement (pooled output: B x tables x dim x 4).
  uint64_t embedding_activation_bytes = 0;
  /// Distinct embedding rows touched (optimizer and scatter cost).
  uint64_t touched_rows = 0;
  /// touched_rows x dim x 4 — the sparse optimizer's working set.
  uint64_t touched_bytes = 0;
  /// Total dense trainable parameters (all-reduce payload).
  uint64_t dense_param_count = 0;
  /// Per-table lookups and distinct touched rows, for placement-aware
  /// accounting (the NvOPT comparator splits tables across devices).
  std::vector<uint64_t> per_table_lookups;
  std::vector<uint64_t> per_table_touched;
};

/// Consumes one table's sparse backward inline during a fused step:
/// receives dL/dout [B, dim] for `table` plus the batch's CSR lookup list
/// (offsets follow the RowGroups relative-offset contract), and is
/// expected to scatter + apply the optimizer in one pass (see
/// SparseSgd::FusedBackwardStep). Called once per fusable table.
using SparseApplyFn = std::function<void(
    size_t table, const Tensor& grad_out,
    std::span<const uint32_t> indices,
    std::span<const uint32_t> offsets)>;

/// Interface shared by DLRM and TBSM: real numerics, explicit gradients.
///
/// Batches arrive as non-owning BatchViews (legacy MiniBatch call sites
/// convert implicitly); the view's backing store must stay alive for the
/// duration of the call. One ForwardBackward call accumulates dense
/// gradients in the model's Parameters and returns embedding gradients
/// sparsely; callers then run Sgd/SparseSgd. EvalLogits is the stateless
/// inference path.
class RecModel {
 public:
  virtual ~RecModel() = default;

  /// Installs a shared worker pool used by the model's dense and embedding
  /// kernels (nullptr restores serial execution). All kernels partition
  /// work write-disjointly, so results are bit-identical at any thread
  /// count.
  virtual void SetThreadPool(ThreadPool* pool) { (void)pool; }

  /// Like ForwardBackwardOn, but tables with a fusable bag backward hand
  /// their output gradient to `apply` (scatter + optimizer in one pass)
  /// instead of materializing it in StepResult::table_grads; only
  /// non-fusable tables (e.g. TBSM's item table with its custom scatter)
  /// still return materialized gradients, and the caller must run the
  /// plain optimizer step on those. The base implementation fuses nothing.
  virtual StepResult ForwardBackwardFusedOn(
      const BatchView& batch, const std::vector<EmbeddingTable*>& tables,
      const SparseApplyFn& apply) {
    (void)apply;
    return ForwardBackwardOn(batch, tables);
  }

  /// Runs the step against an alternative set of tables (the FAE engine
  /// points this at GPU hot-replica tables; `batch` indices must already be
  /// in the replica's coordinate space). Returned sparse gradients use the
  /// same coordinates.
  virtual StepResult ForwardBackwardOn(
      const BatchView& batch,
      const std::vector<EmbeddingTable*>& tables) = 0;

  /// Step against the model's own (master) tables.
  StepResult ForwardBackward(const BatchView& batch) {
    std::vector<EmbeddingTable*> ptrs;
    ptrs.reserve(tables().size());
    for (EmbeddingTable& t : tables()) ptrs.push_back(&t);
    return ForwardBackwardOn(batch, ptrs);
  }

  /// Logits [B, 1] without caching or gradient work.
  virtual Tensor EvalLogits(const BatchView& batch) const = 0;

  virtual std::vector<Parameter*> DenseParams() = 0;

  virtual std::vector<EmbeddingTable>& tables() = 0;
  virtual const std::vector<EmbeddingTable>& tables() const = 0;

  virtual size_t embedding_dim() const = 0;

  /// Cost-model work units for `batch`.
  virtual BatchWork Work(const BatchView& batch) const = 0;
};

}  // namespace fae

#endif  // FAE_MODELS_REC_MODEL_H_
