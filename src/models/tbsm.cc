#include "models/tbsm.h"

#include <algorithm>

#include "tensor/loss.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace fae {

Tbsm::Tbsm(const DatasetSchema& schema, const ModelConfig& config,
           uint64_t seed)
    : schema_(schema),
      config_(config),
      bottom_([&] {
        Xoshiro256 rng(seed);
        return Mlp(config.bottom_mlp, rng, "bottom");
      }()),
      top_([&] {
        Xoshiro256 rng(seed + 1);
        return Mlp(config.top_mlp, rng, "top");
      }()) {
  if (!config_.step_mlp.empty()) {
    FAE_CHECK_EQ(config_.step_mlp.front(), schema.embedding_dim);
    FAE_CHECK_EQ(config_.step_mlp.back(), schema.embedding_dim);
    Xoshiro256 rng(seed + 3);
    step_mlp_.emplace(config_.step_mlp, rng, "step");
  }
  FAE_CHECK(schema_.sequential) << "TBSM requires a sequential schema";
  FAE_CHECK_GE(schema_.num_tables(), 1u);
  FAE_CHECK_EQ(config_.bottom_mlp.back(), schema_.embedding_dim);
  const size_t d = schema_.embedding_dim;
  FAE_CHECK_EQ(config_.top_mlp.front(),
               3 * d + (schema_.num_tables() - 1) * d);
  Xoshiro256 rng(seed + 2);
  tables_.reserve(schema_.num_tables());
  for (uint64_t rows : schema_.table_rows) {
    tables_.emplace_back(rows, d, rng);
  }
}

std::vector<Tbsm::SequenceView> Tbsm::SplitSequences(const BatchView& batch) {
  const std::span<const uint32_t> offsets = batch.offsets(0);
  // The view's offsets are absolute positions into the backing dataset's
  // index buffer; rebasing by the front makes them positions into
  // batch.indices(0).
  const uint32_t base = offsets.front();
  std::vector<SequenceView> views(batch.batch_size());
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    const uint32_t begin = offsets[i] - base;
    const uint32_t end = offsets[i + 1] - base;
    FAE_CHECK_GT(end, begin) << "TBSM input needs at least one item lookup";
    SequenceView& v = views[i];
    v.target = end - 1;
    v.begin = begin;
    // Singleton sequences attend over the target itself.
    v.history_len = (end - begin > 1) ? (end - begin - 1) : 1;
  }
  return views;
}

Tensor Tbsm::ForwardImpl(const BatchView& batch,
                         const std::vector<const EmbeddingTable*>& tables,
                         bool cache) {
  FAE_CHECK_EQ(tables.size(), schema_.num_tables());
  const size_t b = batch.batch_size();
  const size_t d = schema_.embedding_dim;
  const EmbeddingTable& item_table = *tables[0];

  std::vector<SequenceView> seq = SplitSequences(batch);
  // Target (query) embeddings and one stacked matrix of all history rows
  // (so the per-timestep MLP runs as a single GEMM over every timestep).
  Tensor query(b, d);
  size_t total_hist = 0;
  for (const SequenceView& v : seq) total_hist += v.history_len;
  Tensor stacked(total_hist, d);
  const std::span<const uint32_t> item_idx = batch.indices(0);
  size_t row = 0;
  for (size_t i = 0; i < b; ++i) {
    // ReadRowInto rather than a raw row pointer: with a compressed master
    // table the item rows may live in the quantized cold store.
    item_table.ReadRowInto(item_idx[seq[i].target], query.row(i));
    for (uint32_t j = 0; j < seq[i].history_len; ++j) {
      item_table.ReadRowInto(item_idx[seq[i].begin + j], stacked.row(row++));
    }
  }
  // Per-timestep transform, then split back into per-sample matrices. The
  // training path parks the stack in a member first: the step MLP caches a
  // view of its input, which must outlive this frame.
  const Tensor* transformed = nullptr;
  Tensor transformed_local;
  if (cache) {
    cached_stacked_ = std::move(stacked);
    transformed =
        step_mlp_ ? &step_mlp_->Forward(cached_stacked_) : &cached_stacked_;
  } else if (step_mlp_) {
    transformed_local = step_mlp_->ForwardInference(stacked);
    transformed = &transformed_local;
  } else {
    transformed_local = std::move(stacked);
    transformed = &transformed_local;
  }
  std::vector<Tensor> history;
  history.reserve(b);
  row = 0;
  for (size_t i = 0; i < b; ++i) {
    Tensor z(seq[i].history_len, d);
    for (uint32_t j = 0; j < seq[i].history_len; ++j) {
      std::copy(transformed->row(row), transformed->row(row) + d, z.row(j));
      ++row;
    }
    history.push_back(std::move(z));
  }

  // Attention context. The inference path must not clobber the training
  // caches, so it uses a scratch attention instance.
  Tensor context;
  if (cache) {
    context = attention_.Forward(history, query);
  } else {
    DotAttention scratch;
    context = scratch.Forward(history, query);
  }

  // Remaining tables: pooled single lookups.
  std::vector<Tensor> pooled;
  pooled.reserve(schema_.num_tables() - 1);
  for (size_t t = 1; t < schema_.num_tables(); ++t) {
    pooled.push_back(EmbeddingBag::Forward(*tables[t], batch.indices(t),
                                           batch.offsets(t), pool_));
  }

  std::vector<const Tensor*> blocks;
  Tensor logits;
  if (cache) {
    const Tensor& bottom_out = bottom_.Forward(batch.dense);
    blocks = {&context, &query, &bottom_out};
    for (const Tensor& p : pooled) blocks.push_back(&p);
    // The top MLP caches a view of its input — persist it in a member.
    ConcatColsInto(cached_top_in_, blocks);
    logits = top_.Forward(cached_top_in_);
    cached_seq_ = std::move(seq);
  } else {
    Tensor bottom_out = bottom_.ForwardInference(batch.dense);
    blocks = {&context, &query, &bottom_out};
    for (const Tensor& p : pooled) blocks.push_back(&p);
    Tensor top_in = ConcatCols(blocks);
    logits = top_.ForwardInference(top_in);
  }
  return logits;
}

StepResult Tbsm::StepImpl(const BatchView& batch,
                          const std::vector<EmbeddingTable*>& tables,
                          const SparseApplyFn* apply) {
  std::vector<const EmbeddingTable*> ctables(tables.begin(), tables.end());
  Tensor logits = ForwardImpl(batch, ctables, /*cache=*/true);
  BceResult bce = BceWithLogits(logits, batch.labels);

  const size_t d = schema_.embedding_dim;
  const Tensor& g_top_in = top_.Backward(bce.grad_logits);
  std::vector<size_t> widths(2 + schema_.num_tables(), d);
  std::vector<Tensor> split = SplitCols(g_top_in, widths);
  Tensor& g_context = split[0];
  Tensor& g_query = split[1];
  Tensor& g_bottom = split[2];

  bottom_.Backward(g_bottom);

  DotAttention::BackwardResult attn = attention_.Backward(g_context);
  // Total query gradient: direct concat path + attention path.
  g_query.Add(attn.grad_query);

  // Per-timestep MLP backward over the stacked history gradients.
  size_t total_hist = 0;
  for (const SequenceView& v : cached_seq_) total_hist += v.history_len;
  Tensor stacked_grad(total_hist, d);
  {
    size_t row = 0;
    for (size_t i = 0; i < batch.batch_size(); ++i) {
      const Tensor& gh = attn.grad_history[i];
      for (size_t j = 0; j < gh.rows(); ++j) {
        std::copy(gh.row(j), gh.row(j) + d, stacked_grad.row(row++));
      }
    }
  }
  const Tensor& raw_hist_grad =
      step_mlp_ ? step_mlp_->Backward(stacked_grad) : stacked_grad;

  StepResult result;
  result.loss = bce.mean_loss;
  result.correct = bce.correct;
  result.batch_size = batch.batch_size();

  // Item table: the history/target contributions form a synthesized lookup
  // list (one gradient row per contribution, unit offsets) so the shared
  // bag backward — or the fused scatter+optimizer — handles the scatter.
  // Rows are emitted in the same per-sample order (history, then target)
  // the scalar implementation accumulated them.
  const std::span<const uint32_t> item_idx = batch.indices(0);
  const size_t total_contrib = total_hist + batch.batch_size();
  Tensor item_grad_out(total_contrib, d);
  std::vector<uint32_t> item_scatter_idx(total_contrib);
  std::vector<uint32_t> item_scatter_off(total_contrib + 1);
  {
    size_t r = 0;
    size_t hist_row = 0;
    for (size_t i = 0; i < batch.batch_size(); ++i) {
      const SequenceView& v = cached_seq_[i];
      for (uint32_t j = 0; j < v.history_len; ++j) {
        item_scatter_idx[r] = item_idx[v.begin + j];
        const float* g = raw_hist_grad.row(hist_row++);
        std::copy(g, g + d, item_grad_out.row(r));
        ++r;
      }
      item_scatter_idx[r] = item_idx[v.target];
      const float* g = g_query.row(i);
      std::copy(g, g + d, item_grad_out.row(r));
      ++r;
    }
    FAE_CHECK_EQ(r, total_contrib);
    for (size_t i = 0; i <= total_contrib; ++i) {
      item_scatter_off[i] = static_cast<uint32_t>(i);
    }
  }

  if (apply != nullptr) {
    (*apply)(0, item_grad_out, item_scatter_idx, item_scatter_off);
    for (size_t t = 1; t < schema_.num_tables(); ++t) {
      (*apply)(t, split[2 + t], batch.indices(t), batch.offsets(t));
    }
  } else {
    result.table_grads.resize(schema_.num_tables());
    result.table_grads[0] = EmbeddingBag::Backward(
        item_grad_out, item_scatter_idx, item_scatter_off, d, pool_);
    for (size_t t = 1; t < schema_.num_tables(); ++t) {
      result.table_grads[t] = EmbeddingBag::Backward(
          split[2 + t], batch.indices(t), batch.offsets(t), d, pool_);
    }
  }
  return result;
}

StepResult Tbsm::ForwardBackwardOn(
    const BatchView& batch, const std::vector<EmbeddingTable*>& tables) {
  return StepImpl(batch, tables, /*apply=*/nullptr);
}

StepResult Tbsm::ForwardBackwardFusedOn(
    const BatchView& batch, const std::vector<EmbeddingTable*>& tables,
    const SparseApplyFn& apply) {
  return StepImpl(batch, tables, &apply);
}

Tensor Tbsm::EvalLogits(const BatchView& batch) const {
  std::vector<const EmbeddingTable*> ctables;
  ctables.reserve(tables_.size());
  for (const EmbeddingTable& t : tables_) ctables.push_back(&t);
  // ForwardImpl only mutates caches when cache=true, so the const_cast is
  // safe for the inference path.
  return const_cast<Tbsm*>(this)->ForwardImpl(batch, ctables,
                                              /*cache=*/false);
}

std::vector<Parameter*> Tbsm::DenseParams() {
  std::vector<Parameter*> params = bottom_.Params();
  for (Parameter* p : top_.Params()) params.push_back(p);
  if (step_mlp_) {
    for (Parameter* p : step_mlp_->Params()) params.push_back(p);
  }
  return params;
}

BatchWork Tbsm::Work(const BatchView& batch) const {
  BatchWork w;
  const size_t b = batch.batch_size();
  w.batch_size = b;
  const size_t d = schema_.embedding_dim;
  w.forward_flops = bottom_.ForwardFlops(b) + top_.ForwardFlops(b);
  // Per-timestep MLP runs once per history element.
  if (step_mlp_) {
    w.forward_flops += step_mlp_->ForwardFlops(batch.indices(0).size());
  }
  // Attention: scores + context, ~4*T*d FLOPs per sample.
  w.forward_flops += 4ULL * batch.indices(0).size() * d;
  w.embedding_read_bytes = batch.TotalLookups() * d * sizeof(float);
  w.embedding_activation_bytes =
      static_cast<uint64_t>(b) * (2 + schema_.num_tables()) * d *
      sizeof(float);
  w.dense_param_count = bottom_.NumParams() + top_.NumParams();
  std::vector<uint32_t> scratch;
  for (size_t t = 0; t < schema_.num_tables(); ++t) {
    const std::span<const uint32_t> idx = batch.indices(t);
    scratch.assign(idx.begin(), idx.end());
    std::sort(scratch.begin(), scratch.end());
    const size_t distinct = static_cast<size_t>(
        std::unique(scratch.begin(), scratch.end()) - scratch.begin());
    w.touched_rows += distinct;
    w.per_table_lookups.push_back(idx.size());
    w.per_table_touched.push_back(distinct);
  }
  w.touched_bytes = w.touched_rows * d * sizeof(float);
  return w;
}

}  // namespace fae
