#ifndef FAE_MODELS_MODEL_CONFIG_H_
#define FAE_MODELS_MODEL_CONFIG_H_

#include <cstddef>
#include <vector>

#include "data/schema.h"

namespace fae {

/// Architecture hyper-parameters shared by DLRM and TBSM (paper Table I).
struct ModelConfig {
  /// Bottom MLP widths, including the input (num_dense) and output layers;
  /// the output width must equal the embedding dim for the interaction.
  std::vector<size_t> bottom_mlp;
  /// Top MLP widths, including input width and the final logit (1).
  std::vector<size_t> top_mlp;
  /// TBSM only: per-timestep MLP applied to every history item embedding
  /// before the attention layer (Table I's "22-15-15" time-series stage).
  /// First and last widths must equal the embedding dim; empty = identity.
  std::vector<size_t> step_mlp;
  float learning_rate = 0.1f;
};

/// Table I architectures, adapted to `schema` (the top-MLP input width
/// depends on the number of tables via the pairwise interaction).
/// `full_size` selects the paper's layer widths; false shrinks hidden
/// layers ~8x for fast tests/benches while keeping depth.
ModelConfig MakeDlrmConfig(const DatasetSchema& schema, bool full_size);
ModelConfig MakeTbsmConfig(const DatasetSchema& schema, bool full_size);

/// Width of the top MLP's input under DLRM's pairwise-dot interaction:
/// F = num_tables + 1 feature blocks -> F*(F-1)/2 dots + dim (bottom out).
size_t DlrmTopInputWidth(const DatasetSchema& schema);

}  // namespace fae

#endif  // FAE_MODELS_MODEL_CONFIG_H_
