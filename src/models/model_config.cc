#include "models/model_config.h"

#include "util/logging.h"

namespace fae {

size_t DlrmTopInputWidth(const DatasetSchema& schema) {
  const size_t f = schema.num_tables() + 1;  // tables + bottom-MLP block
  return f * (f - 1) / 2 + schema.embedding_dim;
}

ModelConfig MakeDlrmConfig(const DatasetSchema& schema, bool full_size) {
  ModelConfig cfg;
  const size_t d = schema.embedding_dim;
  if (full_size) {
    // Table I: Kaggle bottom 13-512-256-64-16, Terabyte bottom
    // 13-512-256-64 (output equals the embedding dim in both cases).
    if (d == 64) {
      cfg.bottom_mlp = {schema.num_dense, 512, 256, 64};
      cfg.top_mlp = {DlrmTopInputWidth(schema), 512, 512, 256, 1};
    } else {
      cfg.bottom_mlp = {schema.num_dense, 512, 256, 64, d};
      cfg.top_mlp = {DlrmTopInputWidth(schema), 512, 256, 1};
    }
  } else {
    cfg.bottom_mlp = {schema.num_dense, 64, d};
    cfg.top_mlp = {DlrmTopInputWidth(schema), 64, 1};
  }
  FAE_CHECK_EQ(cfg.bottom_mlp.back(), d)
      << "bottom MLP must emit embedding_dim features";
  return cfg;
}

ModelConfig MakeTbsmConfig(const DatasetSchema& schema, bool full_size) {
  ModelConfig cfg;
  const size_t d = schema.embedding_dim;
  // Bottom MLP per Table I RMC1 ("1-16 & 22-15-15" feeds a 16-wide joint
  // space); we map dense features straight to the embedding dim.
  cfg.bottom_mlp = full_size
                       ? std::vector<size_t>{schema.num_dense, 16, d}
                       : std::vector<size_t>{schema.num_dense, d};
  // Per-timestep transform over each history embedding — the deep
  // time-series stage that makes TBSM's forward/backward dominate its
  // runtime (paper SIV-B3: "the deep attention layer").
  cfg.step_mlp = full_size ? std::vector<size_t>{d, 64, 64, d}
                           : std::vector<size_t>{d, d};
  // Top MLP consumes concat(attention context, target item embedding,
  // bottom output, per-table one-hot pools beyond item table).
  const size_t top_in = 3 * d + (schema.num_tables() - 1) * d;
  cfg.top_mlp = full_size ? std::vector<size_t>{top_in, 60, 1}
                          : std::vector<size_t>{top_in, 30, 1};
  cfg.learning_rate = 0.05f;
  return cfg;
}

}  // namespace fae
