#ifndef FAE_MODELS_DLRM_H_
#define FAE_MODELS_DLRM_H_

#include <cstdint>
#include <vector>

#include "models/model_config.h"
#include "models/rec_model.h"
#include "tensor/loss.h"
#include "tensor/mlp.h"

namespace fae {

/// Deep Learning Recommendation Model (Naumov et al., the paper's RMC2 and
/// RMC3): bottom MLP over dense features, one sum-pooled embedding bag per
/// categorical table, pairwise-dot feature interaction, top MLP to a
/// click-probability logit.
///
/// Training steps run entirely in member workspaces (activations,
/// interaction buffers, gradients) sized on the first step and reused —
/// the fused path performs zero heap allocations at steady state.
class Dlrm : public RecModel {
 public:
  Dlrm(const DatasetSchema& schema, const ModelConfig& config, uint64_t seed);

  StepResult ForwardBackwardOn(
      const BatchView& batch,
      const std::vector<EmbeddingTable*>& tables) override;

  StepResult ForwardBackwardFusedOn(
      const BatchView& batch, const std::vector<EmbeddingTable*>& tables,
      const SparseApplyFn& apply) override;

  void SetThreadPool(ThreadPool* pool) override {
    pool_ = pool;
    bottom_.set_thread_pool(pool);
    top_.set_thread_pool(pool);
  }

  Tensor EvalLogits(const BatchView& batch) const override;

  std::vector<Parameter*> DenseParams() override;
  std::vector<EmbeddingTable>& tables() override { return tables_; }
  const std::vector<EmbeddingTable>& tables() const override {
    return tables_;
  }
  size_t embedding_dim() const override { return schema_.embedding_dim; }
  BatchWork Work(const BatchView& batch) const override;

 private:
  /// Training forward into the member workspaces; returns the top MLP's
  /// logit workspace.
  const Tensor& TrainForward(const BatchView& batch,
                             const std::vector<EmbeddingTable*>& tables);

  // Shared forward+backward; when `apply` is non-null every table's output
  // gradient is handed to it instead of materialized in the result.
  StepResult StepImpl(const BatchView& batch,
                      const std::vector<EmbeddingTable*>& tables,
                      const SparseApplyFn* apply);

  DatasetSchema schema_;
  ModelConfig config_;
  Mlp bottom_;
  Mlp top_;
  std::vector<EmbeddingTable> tables_;
  ThreadPool* pool_ = nullptr;  // not owned

  // Step workspaces, reused across batches (capacity sticks at the largest
  // batch seen). `features_` holds {bottom out, emb_out_...} pointers for
  // the interaction kernels; its pointees live for the whole step.
  std::vector<Tensor> emb_out_;
  std::vector<const Tensor*> features_;
  std::vector<const Tensor*> concat_blocks_;
  Tensor inter_;
  Tensor top_in_;
  BceResult bce_;
  Tensor g_bottom_direct_;
  Tensor g_inter_;
  std::vector<Tensor*> split_outs_;
  std::vector<size_t> split_widths_;
  std::vector<Tensor> feat_grads_;
  mutable std::vector<uint32_t> work_scratch_;  // Work() distinct counting
};

}  // namespace fae

#endif  // FAE_MODELS_DLRM_H_
