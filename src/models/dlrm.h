#ifndef FAE_MODELS_DLRM_H_
#define FAE_MODELS_DLRM_H_

#include <cstdint>
#include <vector>

#include "models/model_config.h"
#include "models/rec_model.h"
#include "tensor/mlp.h"

namespace fae {

/// Deep Learning Recommendation Model (Naumov et al., the paper's RMC2 and
/// RMC3): bottom MLP over dense features, one sum-pooled embedding bag per
/// categorical table, pairwise-dot feature interaction, top MLP to a
/// click-probability logit.
class Dlrm : public RecModel {
 public:
  Dlrm(const DatasetSchema& schema, const ModelConfig& config, uint64_t seed);

  StepResult ForwardBackwardOn(
      const MiniBatch& batch,
      const std::vector<EmbeddingTable*>& tables) override;

  StepResult ForwardBackwardFusedOn(
      const MiniBatch& batch, const std::vector<EmbeddingTable*>& tables,
      const SparseApplyFn& apply) override;

  void SetThreadPool(ThreadPool* pool) override {
    pool_ = pool;
    bottom_.set_thread_pool(pool);
    top_.set_thread_pool(pool);
  }

  Tensor EvalLogits(const MiniBatch& batch) const override;

  std::vector<Parameter*> DenseParams() override;
  std::vector<EmbeddingTable>& tables() override { return tables_; }
  const std::vector<EmbeddingTable>& tables() const override {
    return tables_;
  }
  size_t embedding_dim() const override { return schema_.embedding_dim; }
  BatchWork Work(const MiniBatch& batch) const override;

 private:
  Tensor ForwardImpl(const MiniBatch& batch,
                     const std::vector<const EmbeddingTable*>& tables,
                     bool cache);

  // Shared forward+backward; when `apply` is non-null every table's output
  // gradient is handed to it instead of materialized in the result.
  StepResult StepImpl(const MiniBatch& batch,
                      const std::vector<EmbeddingTable*>& tables,
                      const SparseApplyFn* apply);

  DatasetSchema schema_;
  ModelConfig config_;
  Mlp bottom_;
  Mlp top_;
  std::vector<EmbeddingTable> tables_;
  ThreadPool* pool_ = nullptr;  // not owned

  // Forward caches consumed by the following backward.
  Tensor cached_bottom_out_;
  std::vector<Tensor> cached_emb_out_;
};

}  // namespace fae

#endif  // FAE_MODELS_DLRM_H_
