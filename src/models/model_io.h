#ifndef FAE_MODELS_MODEL_IO_H_
#define FAE_MODELS_MODEL_IO_H_

#include <string>

#include "models/rec_model.h"
#include "util/file_io.h"
#include "util/statusor.h"

namespace fae {

/// Checkpointing: (de)serializes a RecModel's trainable state — dense
/// parameters and embedding tables — so training can resume or a trained
/// model can be served (see examples/serving.cpp).
///
/// Saves are crash-safe: the file is written to a temp path and renamed
/// into place only once complete, and it ends with a CRC-32 footer that
/// Load verifies before parsing a single field — a truncated, bit-flipped,
/// or interrupted checkpoint is reported as a Status, never loaded.
///
/// Load restores *into* an existing model of the same architecture; the
/// file records parameter names and shapes and refuses mismatches, so a
/// checkpoint cannot be silently loaded into the wrong model.
///
/// Format v3 records a per-table storage mode: plain fp32 tables are
/// written raw as before, compressed tables (EmbeddingTable::CompressCold)
/// persist their quantized sections *verbatim* — slot map, resident fp32
/// rows, int8 codes + scale/zero_point arrays or binary16 payload — under
/// the same whole-file CRC. Verbatim matters: requantizing a dequantized
/// row re-rounds the scale, so round-tripping through fp32 would not be
/// bit-stable. A compressed section read into a plain table restores the
/// compressed state; the trainer then keeps it (same cold_precision),
/// widens it exactly via Decompress (resuming at fp32), or rejects the
/// combination. Tables must have no staged rows at save time (checkpoints
/// are taken at flushed sync boundaries).
class ModelIo {
 public:
  /// `model` is non-const only because parameter access goes through the
  /// mutable DenseParams() accessor; Save does not modify it.
  static Status Save(const std::string& path, RecModel& model);
  static Status Load(const std::string& path, RecModel& model);

  /// Raw model-state section (dense params + embedding tables), embeddable
  /// inside larger containers — the full-run training checkpoint
  /// (engine/checkpoint.h) reuses it so both formats stay in lockstep.
  static Status WriteModelState(BinaryWriter& w, RecModel& model);
  static Status ReadModelState(BinaryReader& r, RecModel& model);
};

}  // namespace fae

#endif  // FAE_MODELS_MODEL_IO_H_
