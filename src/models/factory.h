#ifndef FAE_MODELS_FACTORY_H_
#define FAE_MODELS_FACTORY_H_

#include <cstdint>
#include <memory>

#include "data/schema.h"
#include "models/model_config.h"
#include "models/rec_model.h"

namespace fae {

/// Builds the Table I model for `schema`: TBSM for sequential schemas,
/// DLRM otherwise.
std::unique_ptr<RecModel> MakeModel(const DatasetSchema& schema,
                                    const ModelConfig& config, uint64_t seed);

/// Same, with the default (scaled or full) config for the schema.
std::unique_ptr<RecModel> MakeModel(const DatasetSchema& schema,
                                    bool full_size, uint64_t seed);

/// Default config for `schema`.
ModelConfig MakeModelConfig(const DatasetSchema& schema, bool full_size);

}  // namespace fae

#endif  // FAE_MODELS_FACTORY_H_
