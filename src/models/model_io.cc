#include "models/model_io.h"

#include "util/file_io.h"
#include "util/string_util.h"

namespace fae {
namespace {

constexpr uint32_t kMagic = 0x4d454146;  // "FAEM"
// v2 added the crash-safety envelope: atomic temp+rename writes and the
// whole-file CRC-32 footer. v3 added the per-table storage-mode tag and
// the verbatim quantized cold-store sections.
constexpr uint32_t kVersion = 3;
constexpr uint32_t kTrailer = 0x444e454d;  // "MEND"

Status WriteTable(BinaryWriter& w, const EmbeddingTable& t) {
  FAE_RETURN_IF_ERROR(w.WriteU64(t.rows()));
  FAE_RETURN_IF_ERROR(w.WriteU64(t.dim()));
  FAE_RETURN_IF_ERROR(
      w.WriteU32(static_cast<uint32_t>(t.cold_precision())));
  if (!t.compressed()) {
    return w.WriteBytes(t.raw().data(), t.raw().size() * sizeof(float));
  }
  if (t.staged_count() != 0) {
    return Status::FailedPrecondition(
        "cannot checkpoint a table with staged cold rows (FlushStaged "
        "before saving)");
  }
  // Verbatim quantized sections (see the header comment on bit-stability),
  // all fed through the writer's running CRC like every other artifact.
  FAE_RETURN_IF_ERROR(w.WriteVector(t.slot_map()));
  FAE_RETURN_IF_ERROR(w.WriteVector(t.resident_data()));
  FAE_RETURN_IF_ERROR(w.WriteVector(t.cold_codes_i8()));
  FAE_RETURN_IF_ERROR(w.WriteVector(t.cold_half()));
  FAE_RETURN_IF_ERROR(w.WriteVector(t.cold_scale()));
  return w.WriteVector(t.cold_zero());
}

Status ReadTable(BinaryReader& r, EmbeddingTable& t) {
  FAE_ASSIGN_OR_RETURN(uint64_t rows, r.ReadU64());
  FAE_ASSIGN_OR_RETURN(uint64_t dim, r.ReadU64());
  if (rows != t.rows() || dim != t.dim()) {
    return Status::FailedPrecondition("checkpoint table shape mismatch");
  }
  FAE_ASSIGN_OR_RETURN(uint32_t mode, r.ReadU32());
  if (mode > static_cast<uint32_t>(ColdPrecision::kInt8)) {
    return Status::DataLoss("unknown table storage mode");
  }
  if (t.compressed()) {
    return Status::FailedPrecondition(
        "cannot restore into a compressed table");
  }
  const ColdPrecision precision = static_cast<ColdPrecision>(mode);
  if (precision == ColdPrecision::kFp32) {
    return r.ReadBytes(t.raw().data(), t.raw().size() * sizeof(float));
  }
  FAE_ASSIGN_OR_RETURN(std::vector<uint32_t> slot, r.ReadVector<uint32_t>());
  FAE_ASSIGN_OR_RETURN(std::vector<float> resident, r.ReadVector<float>());
  FAE_ASSIGN_OR_RETURN(std::vector<uint8_t> codes, r.ReadVector<uint8_t>());
  FAE_ASSIGN_OR_RETURN(std::vector<uint16_t> half, r.ReadVector<uint16_t>());
  FAE_ASSIGN_OR_RETURN(std::vector<float> scale, r.ReadVector<float>());
  FAE_ASSIGN_OR_RETURN(std::vector<float> zero, r.ReadVector<float>());
  // Section-size validation before any state is adopted (the CRC already
  // rules out corruption; this guards against writer/reader skew).
  if (slot.size() != rows) {
    return Status::DataLoss("slot map size mismatch");
  }
  uint64_t hot = 0;
  for (uint32_t s : slot) hot += (s & 0x80000000u) == 0 ? 1 : 0;
  const uint64_t cold = rows - hot;
  if (resident.size() != hot * dim) {
    return Status::DataLoss("resident section size mismatch");
  }
  const bool int8 = precision == ColdPrecision::kInt8;
  if (int8 && (codes.size() != cold * dim || scale.size() != cold ||
               zero.size() != cold || !half.empty())) {
    return Status::DataLoss("int8 cold-store section size mismatch");
  }
  if (!int8 && (half.size() != cold * dim || !codes.empty() ||
                !scale.empty() || !zero.empty())) {
    return Status::DataLoss("fp16 cold-store section size mismatch");
  }
  t.RestoreCompressed(precision, std::move(slot), std::move(resident),
                      std::move(codes), std::move(half), std::move(scale),
                      std::move(zero));
  return Status::OK();
}

}  // namespace

Status ModelIo::WriteModelState(BinaryWriter& w, RecModel& model) {
  const std::vector<Parameter*> params = model.DenseParams();
  FAE_RETURN_IF_ERROR(w.WriteU64(params.size()));
  for (const Parameter* p : params) {
    FAE_RETURN_IF_ERROR(w.WriteString(p->name));
    FAE_RETURN_IF_ERROR(w.WriteU64(p->value.rows()));
    FAE_RETURN_IF_ERROR(w.WriteU64(p->value.cols()));
    FAE_RETURN_IF_ERROR(
        w.WriteBytes(p->value.data(), p->value.numel() * sizeof(float)));
  }

  const std::vector<EmbeddingTable>& tables = model.tables();
  FAE_RETURN_IF_ERROR(w.WriteU64(tables.size()));
  for (const EmbeddingTable& t : tables) {
    FAE_RETURN_IF_ERROR(WriteTable(w, t));
  }
  return Status::OK();
}

Status ModelIo::ReadModelState(BinaryReader& r, RecModel& model) {
  std::vector<Parameter*> params = model.DenseParams();
  FAE_ASSIGN_OR_RETURN(uint64_t param_count, r.ReadU64());
  if (param_count != params.size()) {
    return Status::FailedPrecondition(StrFormat(
        "checkpoint has %llu dense parameters, model has %zu",
        static_cast<unsigned long long>(param_count), params.size()));
  }
  for (Parameter* p : params) {
    FAE_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    FAE_ASSIGN_OR_RETURN(uint64_t rows, r.ReadU64());
    FAE_ASSIGN_OR_RETURN(uint64_t cols, r.ReadU64());
    if (name != p->name || rows != p->value.rows() ||
        cols != p->value.cols()) {
      return Status::FailedPrecondition(StrFormat(
          "checkpoint parameter '%s' [%llux%llu] does not match model "
          "parameter '%s' [%zux%zu]",
          name.c_str(), static_cast<unsigned long long>(rows),
          static_cast<unsigned long long>(cols), p->name.c_str(),
          p->value.rows(), p->value.cols()));
    }
    FAE_RETURN_IF_ERROR(
        r.ReadBytes(p->value.data(), p->value.numel() * sizeof(float)));
  }

  std::vector<EmbeddingTable>& tables = model.tables();
  FAE_ASSIGN_OR_RETURN(uint64_t table_count, r.ReadU64());
  if (table_count != tables.size()) {
    return Status::FailedPrecondition("checkpoint table count mismatch");
  }
  for (EmbeddingTable& t : tables) {
    FAE_RETURN_IF_ERROR(ReadTable(r, t));
  }
  return Status::OK();
}

Status ModelIo::Save(const std::string& path, RecModel& model) {
  FAE_ASSIGN_OR_RETURN(BinaryWriter w, BinaryWriter::OpenAtomic(path));
  FAE_RETURN_IF_ERROR(w.WriteU32(kMagic));
  FAE_RETURN_IF_ERROR(w.WriteU32(kVersion));
  FAE_RETURN_IF_ERROR(WriteModelState(w, model));
  FAE_RETURN_IF_ERROR(w.WriteU32(kTrailer));
  const uint32_t crc = w.crc();
  FAE_RETURN_IF_ERROR(w.WriteU32(crc));
  return w.Commit();
}

Status ModelIo::Load(const std::string& path, RecModel& model) {
  // Verify the whole-file checksum first: any corruption is rejected
  // before a single byte reaches the model.
  FAE_RETURN_IF_ERROR(VerifyFileIntegrity(path));
  FAE_ASSIGN_OR_RETURN(BinaryReader r, BinaryReader::Open(path));
  FAE_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kMagic) {
    return Status::DataLoss("not a FAE model checkpoint: " + path);
  }
  FAE_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kVersion) {
    return Status::DataLoss(
        StrFormat("unsupported checkpoint version %u", version));
  }
  FAE_RETURN_IF_ERROR(ReadModelState(r, model));
  FAE_ASSIGN_OR_RETURN(uint32_t trailer, r.ReadU32());
  if (trailer != kTrailer) {
    return Status::DataLoss("checkpoint trailer missing (truncated?)");
  }
  return Status::OK();
}

}  // namespace fae
