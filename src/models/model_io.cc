#include "models/model_io.h"

#include "util/file_io.h"
#include "util/string_util.h"

namespace fae {
namespace {

constexpr uint32_t kMagic = 0x4d454146;  // "FAEM"
// v2 added the crash-safety envelope: atomic temp+rename writes and the
// whole-file CRC-32 footer.
constexpr uint32_t kVersion = 2;
constexpr uint32_t kTrailer = 0x444e454d;  // "MEND"

}  // namespace

Status ModelIo::WriteModelState(BinaryWriter& w, RecModel& model) {
  const std::vector<Parameter*> params = model.DenseParams();
  FAE_RETURN_IF_ERROR(w.WriteU64(params.size()));
  for (const Parameter* p : params) {
    FAE_RETURN_IF_ERROR(w.WriteString(p->name));
    FAE_RETURN_IF_ERROR(w.WriteU64(p->value.rows()));
    FAE_RETURN_IF_ERROR(w.WriteU64(p->value.cols()));
    FAE_RETURN_IF_ERROR(
        w.WriteBytes(p->value.data(), p->value.numel() * sizeof(float)));
  }

  const std::vector<EmbeddingTable>& tables = model.tables();
  FAE_RETURN_IF_ERROR(w.WriteU64(tables.size()));
  for (const EmbeddingTable& t : tables) {
    FAE_RETURN_IF_ERROR(w.WriteU64(t.rows()));
    FAE_RETURN_IF_ERROR(w.WriteU64(t.dim()));
    FAE_RETURN_IF_ERROR(
        w.WriteBytes(t.raw().data(), t.raw().size() * sizeof(float)));
  }
  return Status::OK();
}

Status ModelIo::ReadModelState(BinaryReader& r, RecModel& model) {
  std::vector<Parameter*> params = model.DenseParams();
  FAE_ASSIGN_OR_RETURN(uint64_t param_count, r.ReadU64());
  if (param_count != params.size()) {
    return Status::FailedPrecondition(StrFormat(
        "checkpoint has %llu dense parameters, model has %zu",
        static_cast<unsigned long long>(param_count), params.size()));
  }
  for (Parameter* p : params) {
    FAE_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    FAE_ASSIGN_OR_RETURN(uint64_t rows, r.ReadU64());
    FAE_ASSIGN_OR_RETURN(uint64_t cols, r.ReadU64());
    if (name != p->name || rows != p->value.rows() ||
        cols != p->value.cols()) {
      return Status::FailedPrecondition(StrFormat(
          "checkpoint parameter '%s' [%llux%llu] does not match model "
          "parameter '%s' [%zux%zu]",
          name.c_str(), static_cast<unsigned long long>(rows),
          static_cast<unsigned long long>(cols), p->name.c_str(),
          p->value.rows(), p->value.cols()));
    }
    FAE_RETURN_IF_ERROR(
        r.ReadBytes(p->value.data(), p->value.numel() * sizeof(float)));
  }

  std::vector<EmbeddingTable>& tables = model.tables();
  FAE_ASSIGN_OR_RETURN(uint64_t table_count, r.ReadU64());
  if (table_count != tables.size()) {
    return Status::FailedPrecondition("checkpoint table count mismatch");
  }
  for (EmbeddingTable& t : tables) {
    FAE_ASSIGN_OR_RETURN(uint64_t rows, r.ReadU64());
    FAE_ASSIGN_OR_RETURN(uint64_t dim, r.ReadU64());
    if (rows != t.rows() || dim != t.dim()) {
      return Status::FailedPrecondition("checkpoint table shape mismatch");
    }
    FAE_RETURN_IF_ERROR(
        r.ReadBytes(t.raw().data(), t.raw().size() * sizeof(float)));
  }
  return Status::OK();
}

Status ModelIo::Save(const std::string& path, RecModel& model) {
  FAE_ASSIGN_OR_RETURN(BinaryWriter w, BinaryWriter::OpenAtomic(path));
  FAE_RETURN_IF_ERROR(w.WriteU32(kMagic));
  FAE_RETURN_IF_ERROR(w.WriteU32(kVersion));
  FAE_RETURN_IF_ERROR(WriteModelState(w, model));
  FAE_RETURN_IF_ERROR(w.WriteU32(kTrailer));
  const uint32_t crc = w.crc();
  FAE_RETURN_IF_ERROR(w.WriteU32(crc));
  return w.Commit();
}

Status ModelIo::Load(const std::string& path, RecModel& model) {
  // Verify the whole-file checksum first: any corruption is rejected
  // before a single byte reaches the model.
  FAE_RETURN_IF_ERROR(VerifyFileIntegrity(path));
  FAE_ASSIGN_OR_RETURN(BinaryReader r, BinaryReader::Open(path));
  FAE_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kMagic) {
    return Status::DataLoss("not a FAE model checkpoint: " + path);
  }
  FAE_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kVersion) {
    return Status::DataLoss(
        StrFormat("unsupported checkpoint version %u", version));
  }
  FAE_RETURN_IF_ERROR(ReadModelState(r, model));
  FAE_ASSIGN_OR_RETURN(uint32_t trailer, r.ReadU32());
  if (trailer != kTrailer) {
    return Status::DataLoss("checkpoint trailer missing (truncated?)");
  }
  return Status::OK();
}

}  // namespace fae
