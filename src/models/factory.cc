#include "models/factory.h"

#include "models/dlrm.h"
#include "models/tbsm.h"

namespace fae {

ModelConfig MakeModelConfig(const DatasetSchema& schema, bool full_size) {
  return schema.sequential ? MakeTbsmConfig(schema, full_size)
                           : MakeDlrmConfig(schema, full_size);
}

std::unique_ptr<RecModel> MakeModel(const DatasetSchema& schema,
                                    const ModelConfig& config,
                                    uint64_t seed) {
  if (schema.sequential) {
    return std::make_unique<Tbsm>(schema, config, seed);
  }
  return std::make_unique<Dlrm>(schema, config, seed);
}

std::unique_ptr<RecModel> MakeModel(const DatasetSchema& schema,
                                    bool full_size, uint64_t seed) {
  return MakeModel(schema, MakeModelConfig(schema, full_size), seed);
}

}  // namespace fae
