#ifndef FAE_STATS_SAMPLING_H_
#define FAE_STATS_SAMPLING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/random.h"

namespace fae {

/// Independently keeps each of {0,..,n-1} with probability `rate`.
/// This is the paper's Sparse Input Sampler (§III-A1): profile only
/// x% ≈ 5% of the training inputs.
std::vector<uint64_t> BernoulliSampleIndices(uint64_t n, double rate,
                                             Xoshiro256& rng);

/// Uniform sample of exactly `k` distinct indices from {0,..,n-1}
/// (Floyd's algorithm), returned sorted.
std::vector<uint64_t> FixedSampleIndices(uint64_t n, uint64_t k,
                                         Xoshiro256& rng);

/// Streaming uniform sample of at most `capacity` items from a sequence
/// whose length is unknown up front (Vitter's Algorithm R). After Add()ing
/// n items, each is present with probability capacity/n. Lets FAE's
/// Sparse Input Sampler run over out-of-core datasets in one pass.
class ReservoirSampler {
 public:
  ReservoirSampler(size_t capacity, uint64_t seed);

  /// Offers item `value` (e.g. a sample index) to the reservoir.
  void Add(uint64_t value);

  const std::vector<uint64_t>& sample() const { return reservoir_; }
  uint64_t seen() const { return seen_; }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  Xoshiro256 rng_;
  std::vector<uint64_t> reservoir_;
  uint64_t seen_ = 0;
};

/// Starting offsets for `num_chunks` random chunks of `chunk_len`
/// consecutive rows inside a table of `table_rows` rows. Used by the
/// Rand-Em Box (§III-A3): n = 35 samples of m = 1024 entries each.
/// Chunks are clamped to stay in-range; when the table is smaller than
/// one chunk a single offset 0 is returned.
std::vector<uint64_t> RandomChunkStarts(uint64_t table_rows,
                                        uint64_t chunk_len,
                                        uint64_t num_chunks, Xoshiro256& rng);

}  // namespace fae

#endif  // FAE_STATS_SAMPLING_H_
