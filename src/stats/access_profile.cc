#include "stats/access_profile.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "util/logging.h"

namespace fae {

AccessProfile::AccessProfile(std::vector<uint64_t> table_rows) {
  counts_.reserve(table_rows.size());
  for (uint64_t rows : table_rows) {
    counts_.emplace_back(rows, 0);
  }
  table_totals_.assign(table_rows.size(), 0);
}

Status AccessProfile::Merge(const AccessProfile& other) {
  if (other.counts_.size() != counts_.size()) {
    return Status::InvalidArgument("profile table count mismatch");
  }
  for (size_t t = 0; t < counts_.size(); ++t) {
    if (other.counts_[t].size() != counts_[t].size()) {
      return Status::InvalidArgument("profile table row mismatch");
    }
    for (size_t r = 0; r < counts_[t].size(); ++r) {
      counts_[t][r] += other.counts_[t][r];
    }
    table_totals_[t] += other.table_totals_[t];
  }
  return Status::OK();
}

uint64_t AccessProfile::grand_total() const {
  uint64_t total = 0;
  for (uint64_t t : table_totals_) total += t;
  return total;
}

uint64_t AccessProfile::EntriesAtOrAbove(size_t table,
                                         uint64_t threshold_count) const {
  FAE_CHECK_LT(table, counts_.size());
  uint64_t n = 0;
  for (uint64_t c : counts_[table]) {
    if (c >= threshold_count) ++n;
  }
  return n;
}

double AccessProfile::TopShare(size_t table, double top_fraction) const {
  FAE_CHECK_LT(table, counts_.size());
  FAE_CHECK_GT(top_fraction, 0.0);
  FAE_CHECK_LE(top_fraction, 1.0);
  if (table_totals_[table] == 0) return 0.0;
  std::vector<uint64_t> sorted = counts_[table];
  std::sort(sorted.begin(), sorted.end(), std::greater<uint64_t>());
  const size_t take = std::max<size_t>(
      1, static_cast<size_t>(std::llround(top_fraction *
                                          static_cast<double>(sorted.size()))));
  uint64_t captured = 0;
  for (size_t i = 0; i < take && i < sorted.size(); ++i) captured += sorted[i];
  return static_cast<double>(captured) /
         static_cast<double>(table_totals_[table]);
}

double AccessProfile::Gini(size_t table) const {
  FAE_CHECK_LT(table, counts_.size());
  const uint64_t total = table_totals_[table];
  const size_t n = counts_[table].size();
  if (total == 0 || n == 0) return 0.0;
  std::vector<uint64_t> sorted = counts_[table];
  std::sort(sorted.begin(), sorted.end());
  // G = (2 * sum_i i*x_i) / (n * sum_i x_i) - (n + 1) / n, 1-based i over
  // ascending x.
  double weighted = 0.0;
  for (size_t i = 0; i < n; ++i) {
    weighted += static_cast<double>(i + 1) * static_cast<double>(sorted[i]);
  }
  return 2.0 * weighted /
             (static_cast<double>(n) * static_cast<double>(total)) -
         (static_cast<double>(n) + 1.0) / static_cast<double>(n);
}

Histogram AccessProfile::CountHistogram(size_t table) const {
  FAE_CHECK_LT(table, counts_.size());
  Histogram h;
  for (uint64_t c : counts_[table]) h.Add(c);
  return h;
}

}  // namespace fae
