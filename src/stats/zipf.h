#ifndef FAE_STATS_ZIPF_H_
#define FAE_STATS_ZIPF_H_

#include <cstdint>

#include "util/random.h"

namespace fae {

/// Zipf(s) sampler over {0, .., n-1} using Hörmann-Derflinger
/// rejection-inversion (the algorithm behind Apache Commons'
/// RejectionInversionZipfSampler). O(1) per sample regardless of n, so it
/// scales to the paper's 73M-row embedding tables.
///
/// P(k) ∝ 1 / (k+1)^s. Rank 0 is the most popular item. The skewed
/// embedding-access patterns the paper exploits (§I: "accesses ... are
/// heavily skewed", §V: "access patterns follow a Power or Zipfian
/// distribution") are synthesized from this distribution.
class ZipfSampler {
 public:
  /// `n` must be >= 1, `exponent` > 0.
  ZipfSampler(uint64_t n, double exponent);

  /// Draws one zero-based rank.
  uint64_t Sample(Xoshiro256& rng) const;

  uint64_t n() const { return n_; }
  double exponent() const { return exponent_; }

  /// Exact probability mass of rank `k` (computed with the normalization
  /// constant; O(n) the first time via lazy harmonic evaluation is avoided —
  /// this recomputes the generalized harmonic number each call and is meant
  /// for tests on small n).
  double Pmf(uint64_t k) const;

 private:
  double HIntegral(double x) const;
  double H(double x) const;
  double HIntegralInverse(double x) const;

  uint64_t n_;
  double exponent_;
  double h_integral_x1_;
  double h_integral_n_;
  double s_;
};

}  // namespace fae

#endif  // FAE_STATS_ZIPF_H_
