#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace fae {
namespace {

// Bucket 0: value 0. Bucket i>=1: [2^(i-1), 2^i - 1].
size_t BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  return 64 - static_cast<size_t>(__builtin_clzll(value));
}

constexpr size_t kNumBuckets = 65;

}  // namespace

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

void Histogram::Add(uint64_t value) {
  buckets_[BucketIndex(value)]++;
  ++total_;
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  total_ += other.total_;
}

uint64_t Histogram::BucketLowerBound(size_t i) {
  if (i == 0) return 0;
  return 1ULL << (i - 1);
}

uint64_t Histogram::ApproximateQuantile(double q) const {
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cum += static_cast<double>(buckets_[i]);
    if (cum >= target) return BucketLowerBound(i);
  }
  return BucketLowerBound(kNumBuckets - 1);
}

double Histogram::ShapeDistance(const Histogram& a, const Histogram& b) {
  if (a.total_ == 0 || b.total_ == 0) return 2.0;
  double d = 0.0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const double pa = static_cast<double>(a.buckets_[i]) /
                      static_cast<double>(a.total_);
    const double pb = static_cast<double>(b.buckets_[i]) /
                      static_cast<double>(b.total_);
    d += std::fabs(pa - pb);
  }
  return d;
}

std::string Histogram::ToString() const {
  std::string out;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    out += StrFormat("[>=%llu] %llu\n",
                     static_cast<unsigned long long>(BucketLowerBound(i)),
                     static_cast<unsigned long long>(buckets_[i]));
  }
  return out;
}

}  // namespace fae
