#ifndef FAE_STATS_ACCESS_PROFILE_H_
#define FAE_STATS_ACCESS_PROFILE_H_

#include <cstdint>
#include <vector>

#include "stats/histogram.h"
#include "util/status.h"

namespace fae {

/// Per-entry access counts for every embedding table of a model — the data
/// structure the paper's Embedding Logger (§III-A2) produces from the
/// sampled inputs and the Embedding Classifier consumes.
class AccessProfile {
 public:
  /// `table_rows[z]` is the number of entries of embedding table z.
  explicit AccessProfile(std::vector<uint64_t> table_rows);

  size_t num_tables() const { return counts_.size(); }
  uint64_t table_rows(size_t table) const { return counts_[table].size(); }

  /// Increments the access count of (`table`, `row`).
  void Record(size_t table, uint64_t row) {
    ++counts_[table][row];
    ++table_totals_[table];
  }

  /// Adds another profile over the same shape into this one.
  Status Merge(const AccessProfile& other);

  const std::vector<uint64_t>& counts(size_t table) const {
    return counts_[table];
  }

  /// Total accesses recorded against `table`.
  uint64_t table_total(size_t table) const { return table_totals_[table]; }

  /// Total accesses across all tables.
  uint64_t grand_total() const;

  /// Number of entries of `table` with count >= `threshold_count`.
  uint64_t EntriesAtOrAbove(size_t table, uint64_t threshold_count) const;

  /// Share of `table`'s accesses captured by its `top_fraction` most
  /// accessed entries (0 < top_fraction <= 1). Sorts a copy; intended for
  /// analysis/benchmarks, not hot paths.
  double TopShare(size_t table, double top_fraction) const;

  /// Log-scale histogram of this table's per-entry counts (Fig 7 shape).
  Histogram CountHistogram(size_t table) const;

  /// Gini coefficient of `table`'s access distribution: 0 = perfectly
  /// uniform, ->1 = all accesses on one entry. A scale-free skew summary
  /// for reports (the paper's "heavily skewed" in one number).
  double Gini(size_t table) const;

 private:
  std::vector<std::vector<uint64_t>> counts_;
  std::vector<uint64_t> table_totals_;
};

}  // namespace fae

#endif  // FAE_STATS_ACCESS_PROFILE_H_
