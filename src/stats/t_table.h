#ifndef FAE_STATS_T_TABLE_H_
#define FAE_STATS_T_TABLE_H_

namespace fae {

/// CDF of Student's t distribution with `df` degrees of freedom, evaluated
/// at `t`. Computed through the regularized incomplete beta function.
double StudentTCdf(double t, double df);

/// Two-sided critical value t_{alpha/2}: the value c such that
/// P(|T| <= c) = confidence for Student's t with `df` degrees of freedom.
///
/// For confidence = 0.999, df = 34 this returns ~3.601.
double TwoSidedTCritical(double confidence, double df);

/// One-sided critical value: c such that P(T <= c) = confidence.
///
/// The paper's Eq 6 quotes t_{alpha/2} = 3.340 for "99.9% confidence and
/// n = 35"; that value is the one-sided 99.9% quantile with df = 35
/// (t-tables list it as t_{0.001, 35} = 3.340), so the Rand-Em Box follows
/// that convention.
double OneSidedTCritical(double confidence, double df);

}  // namespace fae

#endif  // FAE_STATS_T_TABLE_H_
