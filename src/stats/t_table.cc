#include "stats/t_table.h"

#include <cmath>

#include "util/logging.h"

namespace fae {
namespace {

// Regularized incomplete beta function I_x(a, b) via the continued-fraction
// expansion (Numerical Recipes, "betacf"/"betai").
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

}  // namespace

double StudentTCdf(double t, double df) {
  FAE_CHECK_GT(df, 0.0);
  if (t == 0.0) return 0.5;
  const double x = df / (df + t * t);
  const double p = 0.5 * RegularizedIncompleteBeta(df / 2.0, 0.5, x);
  return t > 0.0 ? 1.0 - p : p;
}

namespace {

// Smallest c with StudentTCdf(c, df) = target, by bisection.
double UpperQuantile(double target, double df) {
  double lo = 0.0;
  double hi = 1.0;
  while (StudentTCdf(hi, df) < target) hi *= 2.0;  // bracket
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (StudentTCdf(mid, df) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double TwoSidedTCritical(double confidence, double df) {
  FAE_CHECK_GT(confidence, 0.0);
  FAE_CHECK_LT(confidence, 1.0);
  return UpperQuantile(1.0 - (1.0 - confidence) / 2.0, df);
}

double OneSidedTCritical(double confidence, double df) {
  FAE_CHECK_GT(confidence, 0.5);
  FAE_CHECK_LT(confidence, 1.0);
  return UpperQuantile(confidence, df);
}

}  // namespace fae
