#include "stats/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace fae {
namespace {

// log1p(x)/x, continuous at 0.
double Helper1(double x) { return x == 0.0 ? 1.0 : std::log1p(x) / x; }

// expm1(x)/x, continuous at 0.
double Helper2(double x) { return x == 0.0 ? 1.0 : std::expm1(x) / x; }

}  // namespace

ZipfSampler::ZipfSampler(uint64_t n, double exponent)
    : n_(n), exponent_(exponent) {
  FAE_CHECK_GE(n, 1u) << "Zipf support must be non-empty";
  FAE_CHECK_GT(exponent, 0.0) << "Zipf exponent must be positive";
  h_integral_x1_ = HIntegral(1.5) - 1.0;
  h_integral_n_ = HIntegral(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HIntegralInverse(HIntegral(2.5) - H(2.0));
}

double ZipfSampler::HIntegral(double x) const {
  const double log_x = std::log(x);
  return Helper2((1.0 - exponent_) * log_x) * log_x;
}

double ZipfSampler::H(double x) const {
  return std::exp(-exponent_ * std::log(x));
}

double ZipfSampler::HIntegralInverse(double x) const {
  double t = x * (1.0 - exponent_);
  if (t < -1.0) t = -1.0;  // Numerical guard per commons-math.
  return std::exp(Helper1(t) * x);
}

uint64_t ZipfSampler::Sample(Xoshiro256& rng) const {
  if (n_ == 1) return 0;
  for (;;) {
    const double u =
        h_integral_n_ + rng.NextDouble() * (h_integral_x1_ - h_integral_n_);
    const double x = HIntegralInverse(u);
    // k in [1, n], 1-based.
    double kd = std::floor(x + 0.5);
    kd = std::clamp(kd, 1.0, static_cast<double>(n_));
    const uint64_t k = static_cast<uint64_t>(kd);
    if (kd - x <= s_ ||
        u >= HIntegral(kd + 0.5) - H(kd)) {
      return k - 1;  // zero-based rank
    }
  }
}

double ZipfSampler::Pmf(uint64_t k) const {
  FAE_CHECK_LT(k, n_);
  double norm = 0.0;
  for (uint64_t i = 1; i <= n_; ++i) {
    norm += std::pow(static_cast<double>(i), -exponent_);
  }
  return std::pow(static_cast<double>(k + 1), -exponent_) / norm;
}

}  // namespace fae
