#include "stats/sampling.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace fae {

std::vector<uint64_t> BernoulliSampleIndices(uint64_t n, double rate,
                                             Xoshiro256& rng) {
  FAE_CHECK_GE(rate, 0.0);
  FAE_CHECK_LE(rate, 1.0);
  std::vector<uint64_t> out;
  out.reserve(static_cast<size_t>(static_cast<double>(n) * rate * 1.1) + 16);
  for (uint64_t i = 0; i < n; ++i) {
    if (rng.NextBernoulli(rate)) out.push_back(i);
  }
  return out;
}

std::vector<uint64_t> FixedSampleIndices(uint64_t n, uint64_t k,
                                         Xoshiro256& rng) {
  FAE_CHECK_LE(k, n);
  // Floyd's algorithm: k iterations, expected O(k) set operations.
  std::unordered_set<uint64_t> chosen;
  chosen.reserve(k * 2);
  for (uint64_t j = n - k; j < n; ++j) {
    const uint64_t t = rng.NextBounded(j + 1);
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  std::vector<uint64_t> out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

ReservoirSampler::ReservoirSampler(size_t capacity, uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  FAE_CHECK_GE(capacity, 1u);
  reservoir_.reserve(capacity);
}

void ReservoirSampler::Add(uint64_t value) {
  ++seen_;
  if (reservoir_.size() < capacity_) {
    reservoir_.push_back(value);
    return;
  }
  const uint64_t j = rng_.NextBounded(seen_);
  if (j < capacity_) reservoir_[j] = value;
}

std::vector<uint64_t> RandomChunkStarts(uint64_t table_rows,
                                        uint64_t chunk_len,
                                        uint64_t num_chunks,
                                        Xoshiro256& rng) {
  FAE_CHECK_GE(chunk_len, 1u);
  std::vector<uint64_t> starts;
  if (table_rows <= chunk_len) {
    starts.push_back(0);
    return starts;
  }
  starts.reserve(num_chunks);
  const uint64_t max_start = table_rows - chunk_len;
  for (uint64_t i = 0; i < num_chunks; ++i) {
    starts.push_back(rng.NextBounded(max_start + 1));
  }
  return starts;
}

}  // namespace fae
