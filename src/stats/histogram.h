#ifndef FAE_STATS_HISTOGRAM_H_
#define FAE_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fae {

/// Log-scale histogram of non-negative counts, used to summarize embedding
/// access profiles (Fig 7) and to compare the sampled vs full-dataset
/// access signatures.
class Histogram {
 public:
  /// Buckets are [0], [1], [2,3], [4,7], ... doubling widths up to 2^62.
  Histogram();

  void Add(uint64_t value);
  void Merge(const Histogram& other);

  uint64_t total_count() const { return total_; }

  /// Bucket boundaries and occupancy, for reporting.
  const std::vector<uint64_t>& bucket_counts() const { return buckets_; }

  /// Lower bound of bucket `i`.
  static uint64_t BucketLowerBound(size_t i);

  /// Approximate quantile (0 <= q <= 1) by linear walk over buckets; exact
  /// for values that fall on bucket boundaries.
  uint64_t ApproximateQuantile(double q) const;

  /// L1 distance between the two histograms' normalized bucket masses —
  /// 0 for identical shapes, 2 for disjoint. Used to verify that a 5 %
  /// sample reproduces the full access profile (paper Fig 7).
  static double ShapeDistance(const Histogram& a, const Histogram& b);

  std::string ToString() const;

 private:
  std::vector<uint64_t> buckets_;
  uint64_t total_ = 0;
};

}  // namespace fae

#endif  // FAE_STATS_HISTOGRAM_H_
