#ifndef FAE_STATS_DESCRIPTIVE_H_
#define FAE_STATS_DESCRIPTIVE_H_

#include <cmath>
#include <cstddef>
#include <vector>

namespace fae {

/// Arithmetic mean; 0 for an empty range.
template <typename T>
double Mean(const std::vector<T>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (const T& x : v) sum += static_cast<double>(x);
  return sum / static_cast<double>(v.size());
}

/// Unbiased (n-1) sample standard deviation; 0 for fewer than 2 samples.
/// This is the `s` of the paper's Eq 5/6.
template <typename T>
double SampleStdDev(const std::vector<T>& v) {
  if (v.size() < 2) return 0.0;
  const double mu = Mean(v);
  double ss = 0.0;
  for (const T& x : v) {
    const double d = static_cast<double>(x) - mu;
    ss += d * d;
  }
  return std::sqrt(ss / static_cast<double>(v.size() - 1));
}

}  // namespace fae

#endif  // FAE_STATS_DESCRIPTIVE_H_
