#ifndef FAE_DATA_SAMPLE_H_
#define FAE_DATA_SAMPLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fae {

/// One training input: continuous (dense) features feeding the bottom MLP
/// and categorical (sparse) lookups into each embedding table (paper Fig 1).
struct SparseInput {
  std::vector<float> dense;
  /// indices[t] holds this input's lookups into table t; DLRM inputs have
  /// exactly one per table, TBSM inputs carry a history sequence in the
  /// item table (t = 0).
  std::vector<std::vector<uint32_t>> indices;
  float label = 0.0f;

  /// Total number of embedding lookups this input performs.
  size_t NumLookups() const {
    size_t n = 0;
    for (const auto& v : indices) n += v.size();
    return n;
  }
};

}  // namespace fae

#endif  // FAE_DATA_SAMPLE_H_
