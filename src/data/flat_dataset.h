#ifndef FAE_DATA_FLAT_DATASET_H_
#define FAE_DATA_FLAT_DATASET_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/sample.h"
#include "data/schema.h"
#include "util/logging.h"

namespace fae {

/// Structure-of-arrays dataset storage: one contiguous dense matrix, one
/// contiguous per-table lookup buffer with CSR offsets, and a contiguous
/// label array. Every static FAE pass (Embedding Logger §III-A2, Input
/// Processor §III-B) and every training epoch walks the whole dataset, so
/// the layout matters more than anything the kernels do per element: the
/// historical per-sample `SparseInput` (a vector of vectors per sample)
/// cost a pointer chase and a heap allocation per table per sample, while
/// this layout streams linearly.
///
/// Sample i's lookups in table t are
///   indices(t)[offsets(t)[i] .. offsets(t)[i + 1])
/// which also makes per-sample lookup counts O(1) (the historical
/// `SparseInput::NumLookups` walked every per-table vector).
class FlatDataset {
 public:
  FlatDataset() = default;

  /// Empty dataset ready for streaming appends (loaders and generators
  /// build the flat buffers directly; nothing is ever materialized as
  /// `SparseInput` on the way in).
  explicit FlatDataset(DatasetSchema schema);

  /// Conversion shim for legacy call sites holding AoS samples.
  static FlatDataset FromSamples(DatasetSchema schema,
                                 const std::vector<SparseInput>& samples);

  // --- Streaming builder -------------------------------------------------
  // Per sample, call in order: AppendDense (num_dense times), AppendLookup
  // (grouped by ascending table), then FinishSample. The order matches how
  // loaders and the synthetic generator naturally produce values, so no
  // intermediate buffer is needed.

  void AppendDense(float v) { dense_.push_back(v); }

  void AppendLookup(size_t table, uint32_t row) {
    FAE_CHECK_LT(indices_[table].size(),
                 static_cast<size_t>(UINT32_MAX));  // CSR offsets are u32
    indices_[table].push_back(row);
  }

  void FinishSample(float label);

  /// Lookups appended to table t for the sample under construction (i.e.
  /// since the last FinishSample). Lets generators read back what they just
  /// appended — e.g. to fold a label score over the sample's rows — without
  /// a side buffer.
  std::span<const uint32_t> PendingLookups(size_t t) const {
    const uint32_t b = offsets_[t].back();
    return std::span<const uint32_t>(indices_[t].data() + b,
                                     indices_[t].size() - b);
  }

  /// Reserves buffers for `num_samples` with `lookups_per_table[t]` total
  /// lookups (optional; appends work without it).
  void Reserve(size_t num_samples,
               const std::vector<size_t>& lookups_per_table);

  // --- Accessors ---------------------------------------------------------

  const DatasetSchema& schema() const { return schema_; }
  size_t size() const { return labels_.size(); }

  const float* dense_row(size_t i) const {
    return dense_.data() + i * schema_.num_dense;
  }
  std::span<const float> dense_data() const { return dense_; }
  std::span<const float> labels() const { return labels_; }
  float label(size_t i) const { return labels_[i]; }

  /// All of table t's lookups, concatenated in sample order.
  std::span<const uint32_t> indices(size_t t) const { return indices_[t]; }
  /// Mutable view of table t's lookups, for in-place row remapping (the
  /// replicator's master->slot translation). Shape is fixed; only the row
  /// values may change.
  std::span<uint32_t> mutable_indices(size_t t) { return indices_[t]; }
  /// size()+1 CSR offsets into indices(t).
  std::span<const uint32_t> offsets(size_t t) const { return offsets_[t]; }

  /// Sample i's lookups in table t (zero-copy).
  std::span<const uint32_t> lookups(size_t t, size_t i) const {
    const uint32_t b = offsets_[t][i];
    const uint32_t e = offsets_[t][i + 1];
    return std::span<const uint32_t>(indices_[t].data() + b, e - b);
  }

  /// Embedding lookups of sample i across all tables — O(num_tables), no
  /// per-table vector walk (the offsets difference is the count).
  uint64_t NumLookups(size_t i) const;

  /// Total lookups across the dataset; cached, O(1).
  uint64_t total_lookups() const { return total_lookups_; }

  /// Materializes sample i as a legacy `SparseInput` (compat shim for
  /// edges that still speak AoS; allocates, so keep it off hot paths).
  SparseInput Sample(size_t i) const;

  /// Copies the samples at `ids` (in order) into a new FlatDataset — the
  /// once-per-run permutation that replaces per-batch assembly: batches
  /// then become contiguous views into the gathered buffers.
  FlatDataset Gather(std::span<const uint64_t> ids) const;

  /// Gather into a reusable workspace: every destination buffer is resized
  /// to exactly the gathered shape and overwritten front to back, so a
  /// workspace cycled through batches of different sizes never leaks stale
  /// samples from a previous fill (capacity is retained — after warm-up a
  /// prefetch workspace performs no heap allocations). `out`'s schema is
  /// reset to this dataset's. Views into `out` from a previous fill are
  /// invalidated. Self-gather (`out == this`) is not supported.
  void GatherInto(std::span<const uint64_t> ids, FlatDataset* out) const;

 private:
  DatasetSchema schema_;
  std::vector<float> dense_;                   // [n * num_dense]
  std::vector<float> labels_;                  // [n]
  std::vector<std::vector<uint32_t>> indices_; // per table, all lookups
  std::vector<std::vector<uint32_t>> offsets_; // per table, n + 1 entries
  uint64_t total_lookups_ = 0;
};

}  // namespace fae

#endif  // FAE_DATA_FLAT_DATASET_H_
