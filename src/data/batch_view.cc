#include "data/batch_view.h"

#include <algorithm>

#include "data/minibatch.h"
#include "util/logging.h"

namespace fae {

BatchView::BatchView(const MiniBatch& batch)
    : dense(batch.dense),
      labels(batch.labels),
      hot(batch.hot),
      total_lookups(batch.TotalLookups()) {
  tables.resize(batch.indices.size());
  for (size_t t = 0; t < batch.indices.size(); ++t) {
    tables[t].indices = batch.indices[t];
    tables[t].offsets = batch.offsets[t];
  }
}

BatchView MakeBatchView(const FlatDataset& flat, size_t begin, size_t end,
                        bool hot) {
  FAE_CHECK_LE(begin, end);
  FAE_CHECK_LE(end, flat.size());
  const size_t b = end - begin;
  BatchView view;
  view.dense = MatView(flat.dense_row(begin), b, flat.schema().num_dense);
  view.labels = flat.labels().subspan(begin, b);
  view.hot = hot;
  view.tables.resize(flat.schema().num_tables());
  for (size_t t = 0; t < view.tables.size(); ++t) {
    const std::span<const uint32_t> off = flat.offsets(t);
    const uint32_t lo = off[begin];
    const uint32_t hi = off[end];
    view.tables[t].offsets = off.subspan(begin, b + 1);
    view.tables[t].indices = flat.indices(t).subspan(lo, hi - lo);
    view.total_lookups += hi - lo;
  }
  return view;
}

void ForEachLookup(const BatchView& view,
                   const std::function<void(size_t, uint32_t)>& fn) {
  for (size_t t = 0; t < view.num_tables(); ++t) {
    for (uint32_t row : view.indices(t)) fn(t, row);
  }
}

void ForEachLookup(const FlatDataset& flat, std::span<const uint64_t> ids,
                   const std::function<void(size_t, uint32_t)>& fn) {
  const size_t num_tables = flat.schema().num_tables();
  for (size_t t = 0; t < num_tables; ++t) {
    for (uint64_t id : ids) {
      for (uint32_t row : flat.lookups(t, id)) fn(t, row);
    }
  }
}

std::vector<BatchView> MakeBatchViews(const FlatDataset& flat,
                                      size_t batch_size, bool hot) {
  FAE_CHECK_GE(batch_size, 1u);
  std::vector<BatchView> out;
  out.reserve((flat.size() + batch_size - 1) / batch_size);
  for (size_t begin = 0; begin < flat.size(); begin += batch_size) {
    const size_t end = std::min(flat.size(), begin + batch_size);
    out.push_back(MakeBatchView(flat, begin, end, hot));
  }
  return out;
}

}  // namespace fae
