#include "data/batch_loader.h"

#include <algorithm>

#include "util/logging.h"

namespace fae {

BatchLoader::BatchLoader(const Dataset* dataset,
                         std::vector<uint64_t> sample_ids, size_t batch_size,
                         size_t prefetch_depth)
    : dataset_(dataset),
      sample_ids_(std::move(sample_ids)),
      batch_size_(batch_size),
      prefetch_depth_(std::max<size_t>(1, prefetch_depth)) {
  FAE_CHECK(dataset != nullptr);
  FAE_CHECK_GE(batch_size, 1u);
  num_batches_ = (sample_ids_.size() + batch_size_ - 1) / batch_size_;
  producer_ = std::thread([this] { ProducerLoop(); });
}

BatchLoader::~BatchLoader() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  consumed_.notify_all();
  produced_.notify_all();
  producer_.join();
}

void BatchLoader::ProducerLoop() {
  for (;;) {
    uint64_t my_generation;
    size_t batch_index;
    {
      std::unique_lock<std::mutex> lock(mu_);
      consumed_.wait(lock, [this] {
        return shutdown_ || (next_to_produce_ < num_batches_ &&
                             queue_.size() < prefetch_depth_);
      });
      if (shutdown_) return;
      my_generation = generation_;
      batch_index = next_to_produce_;
    }

    // Assemble outside the lock — this is the expensive part the loader
    // overlaps with training.
    const size_t begin = batch_index * batch_size_;
    const size_t end = std::min(sample_ids_.size(), begin + batch_size_);
    std::vector<uint64_t> ids(sample_ids_.begin() + begin,
                              sample_ids_.begin() + end);
    MiniBatch batch = AssembleBatch(*dataset_, ids);

    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return;
      // A Reset raced with assembly: drop the stale batch.
      if (my_generation != generation_) continue;
      queue_.push_back(std::move(batch));
      ++next_to_produce_;
    }
    produced_.notify_one();
  }
}

std::optional<MiniBatch> BatchLoader::Next() {
  std::unique_lock<std::mutex> lock(mu_);
  if (next_to_consume_ >= num_batches_) return std::nullopt;
  produced_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;  // shut down mid-epoch
  MiniBatch batch = std::move(queue_.front());
  queue_.pop_front();
  ++next_to_consume_;
  lock.unlock();
  consumed_.notify_one();
  return batch;
}

void BatchLoader::Reset() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++generation_;
    queue_.clear();
    next_to_produce_ = 0;
    next_to_consume_ = 0;
  }
  consumed_.notify_all();
}

}  // namespace fae
