#ifndef FAE_DATA_BATCH_LOADER_H_
#define FAE_DATA_BATCH_LOADER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "data/minibatch.h"

namespace fae {

/// Background mini-batch assembly: a producer thread builds batches ahead
/// of the training loop into a bounded queue, overlapping input
/// preparation with compute — the input-pipeline piece a production
/// trainer puts in front of the engine.
///
/// Batch *contents and order* are identical to calling AssembleBatches on
/// the same ids (determinism is preserved; only the timing changes).
/// Thread-compatible: one consumer thread calls Next()/Reset().
class BatchLoader {
 public:
  /// Batches `sample_ids` in order, `batch_size` at a time (last batch may
  /// be short). Keeps at most `prefetch_depth` assembled batches queued.
  /// `dataset` must outlive the loader.
  BatchLoader(const Dataset* dataset, std::vector<uint64_t> sample_ids,
              size_t batch_size, size_t prefetch_depth = 4);

  /// Joins the producer.
  ~BatchLoader();

  BatchLoader(const BatchLoader&) = delete;
  BatchLoader& operator=(const BatchLoader&) = delete;

  /// Blocks for the next batch; nullopt once the epoch is exhausted.
  std::optional<MiniBatch> Next();

  /// Restarts the epoch from the first batch (same ids, same order).
  /// Discards anything prefetched.
  void Reset();

  size_t num_batches() const { return num_batches_; }
  size_t batch_size() const { return batch_size_; }

 private:
  void ProducerLoop();

  const Dataset* dataset_;
  std::vector<uint64_t> sample_ids_;
  size_t batch_size_;
  size_t prefetch_depth_;
  size_t num_batches_;

  std::mutex mu_;
  std::condition_variable produced_;
  std::condition_variable consumed_;
  std::deque<MiniBatch> queue_;
  size_t next_to_produce_ = 0;  // batch index the producer builds next
  size_t next_to_consume_ = 0;  // batch index Next() hands out next
  uint64_t generation_ = 0;     // bumped by Reset to invalidate prefetches
  bool shutdown_ = false;

  std::thread producer_;
};

}  // namespace fae

#endif  // FAE_DATA_BATCH_LOADER_H_
