#include "data/dataset.h"

#include "util/logging.h"

namespace fae {

AccessProfile Dataset::ProfileAccesses(
    const std::vector<uint64_t>& which) const {
  AccessProfile profile(schema().table_rows);
  // Record order matches the historical per-sample walk (sample-major,
  // table-ascending) so profiles stay identical; the flat layout just
  // removes the per-sample vector materialization.
  for (uint64_t i : which) {
    FAE_CHECK_LT(i, flat_.size());
    for (size_t t = 0; t < schema().num_tables(); ++t) {
      for (uint32_t row : flat_.lookups(t, i)) profile.Record(t, row);
    }
  }
  return profile;
}

AccessProfile Dataset::ProfileAllAccesses() const {
  AccessProfile profile(schema().table_rows);
  for (size_t i = 0; i < flat_.size(); ++i) {
    for (size_t t = 0; t < schema().num_tables(); ++t) {
      for (uint32_t row : flat_.lookups(t, i)) profile.Record(t, row);
    }
  }
  return profile;
}

Dataset::Split Dataset::MakeSplit(double test_fraction) const {
  FAE_CHECK_GE(test_fraction, 0.0);
  FAE_CHECK_LT(test_fraction, 1.0);
  Split split;
  const size_t test_count =
      static_cast<size_t>(static_cast<double>(size()) * test_fraction);
  const size_t train_count = size() - test_count;
  split.train.reserve(train_count);
  split.test.reserve(test_count);
  for (size_t i = 0; i < train_count; ++i) split.train.push_back(i);
  for (size_t i = train_count; i < size(); ++i) {
    split.test.push_back(i);
  }
  return split;
}

}  // namespace fae
