#ifndef FAE_DATA_SYNTHETIC_H_
#define FAE_DATA_SYNTHETIC_H_

#include <cstdint>

#include "data/dataset.h"
#include "data/schema.h"

namespace fae {

/// Knobs of the synthetic workload generator.
struct SyntheticOptions {
  uint64_t seed = 42;
  /// Zipf exponent of the popularity distribution over each table's rows.
  /// 1.15 reproduces the paper's regime: the top ~7% of entries receive
  /// >76% of a table's accesses (§II-A) *and* the compound per-input hot
  /// probability across ~26 tables stays high enough that the majority of
  /// inputs are hot, as the paper's speedups imply. Larger values
  /// concentrate further.
  double zipf_exponent = 1.15;
  /// Scale of the planted per-entry affinity used to label inputs; larger
  /// values make the task easier to learn.
  double affinity_scale = 1.5;
  /// Weight of the dense features in the planted labeller.
  double dense_weight_scale = 0.8;
  /// Popularity drift: how far the hot set rotates through each table's
  /// row space over the course of the dataset (0 = the paper's static
  /// popularity; 1 = a full rotation). Real logs drift as items trend;
  /// FAE's once-per-dataset calibration assumes drift ~ 0 — see
  /// bench/abl_popularity_drift.cc for what happens when it is not.
  double popularity_drift = 0.0;
};

/// Generates Zipf-skewed synthetic recommendation datasets with a planted
/// logistic ground truth, standing in for the Criteo/Taobao downloads (see
/// DESIGN.md substitution table).
///
/// Popularity ranks are mapped to row ids through a per-table affine
/// bijection so hot rows are scattered across the table rather than
/// clustered at the front — matching the paper's "hot embeddings are
/// scattered" premise (§I challenge 3) without storing a permutation for
/// multi-million-row tables.
class SyntheticGenerator {
 public:
  SyntheticGenerator(DatasetSchema schema, SyntheticOptions options);

  /// Generates `num_inputs` labelled inputs.
  Dataset Generate(size_t num_inputs) const;

  /// Row id the popularity rank `rank` of table `t` maps to (at the start
  /// of the dataset; drift shifts later inputs — see RankToRowAt).
  uint64_t RankToRow(size_t t, uint64_t rank) const {
    return RankToRowAt(t, rank, 0.0);
  }

  /// Row id for rank `rank` of table `t` at dataset position
  /// `phase` in [0, 1]: the popularity mapping rotates by
  /// popularity_drift * phase * rows.
  uint64_t RankToRowAt(size_t t, uint64_t rank, double phase) const;

  /// Planted affinity of (table, row) in [-affinity_scale, affinity_scale];
  /// deterministic in the seed. Exposed so tests can verify labels are
  /// learnable (signal, not noise).
  double Affinity(size_t t, uint64_t row) const;

  const DatasetSchema& schema() const { return schema_; }

 private:
  DatasetSchema schema_;
  SyntheticOptions options_;
  // Affine rank->row maps: row = (mult * rank + shift) % rows.
  std::vector<uint64_t> mult_;
  std::vector<uint64_t> shift_;
  std::vector<double> dense_weights_;
};

}  // namespace fae

#endif  // FAE_DATA_SYNTHETIC_H_
