#include "data/flat_dataset.h"

#include <algorithm>

namespace fae {

FlatDataset::FlatDataset(DatasetSchema schema) : schema_(std::move(schema)) {
  indices_.resize(schema_.num_tables());
  offsets_.assign(schema_.num_tables(), std::vector<uint32_t>(1, 0));
}

void FlatDataset::FinishSample(float label) {
  FAE_CHECK_EQ(dense_.size(), (labels_.size() + 1) * schema_.num_dense)
      << "AppendDense count does not match the schema's dense width";
  for (size_t t = 0; t < indices_.size(); ++t) {
    offsets_[t].push_back(static_cast<uint32_t>(indices_[t].size()));
    total_lookups_ += offsets_[t][labels_.size() + 1] - offsets_[t][labels_.size()];
  }
  labels_.push_back(label);
}

void FlatDataset::Reserve(size_t num_samples,
                          const std::vector<size_t>& lookups_per_table) {
  dense_.reserve(num_samples * schema_.num_dense);
  labels_.reserve(num_samples);
  for (size_t t = 0; t < indices_.size(); ++t) {
    offsets_[t].reserve(num_samples + 1);
    if (t < lookups_per_table.size()) {
      indices_[t].reserve(lookups_per_table[t]);
    }
  }
}

FlatDataset FlatDataset::FromSamples(DatasetSchema schema,
                                     const std::vector<SparseInput>& samples) {
  FlatDataset flat(std::move(schema));
  std::vector<size_t> lookups(flat.schema_.num_tables(), 0);
  for (const SparseInput& s : samples) {
    for (size_t t = 0; t < s.indices.size(); ++t) {
      lookups[t] += s.indices[t].size();
    }
  }
  flat.Reserve(samples.size(), lookups);
  for (const SparseInput& s : samples) {
    FAE_CHECK_EQ(s.dense.size(), flat.schema_.num_dense);
    FAE_CHECK_EQ(s.indices.size(), flat.schema_.num_tables());
    for (float v : s.dense) flat.AppendDense(v);
    for (size_t t = 0; t < s.indices.size(); ++t) {
      for (uint32_t row : s.indices[t]) flat.AppendLookup(t, row);
    }
    flat.FinishSample(s.label);
  }
  return flat;
}

uint64_t FlatDataset::NumLookups(size_t i) const {
  uint64_t n = 0;
  for (size_t t = 0; t < offsets_.size(); ++t) {
    n += offsets_[t][i + 1] - offsets_[t][i];
  }
  return n;
}

SparseInput FlatDataset::Sample(size_t i) const {
  FAE_CHECK_LT(i, size());
  SparseInput s;
  s.dense.assign(dense_row(i), dense_row(i) + schema_.num_dense);
  s.indices.resize(schema_.num_tables());
  for (size_t t = 0; t < schema_.num_tables(); ++t) {
    const std::span<const uint32_t> l = lookups(t, i);
    s.indices[t].assign(l.begin(), l.end());
  }
  s.label = labels_[i];
  return s;
}

FlatDataset FlatDataset::Gather(std::span<const uint64_t> ids) const {
  FlatDataset out(schema_);
  GatherInto(ids, &out);
  return out;
}

void FlatDataset::GatherInto(std::span<const uint64_t> ids,
                             FlatDataset* out) const {
  FAE_CHECK(out != nullptr);
  FAE_CHECK(out != this);
  const size_t n = ids.size();
  const size_t nd = schema_.num_dense;
  for (uint64_t id : ids) FAE_CHECK_LT(id, size());

  // A reused workspace may come from a different (or differently-shaped)
  // source: take this dataset's schema and resize the per-table buffer
  // lists to match before the columnar passes below overwrite them.
  out->schema_ = schema_;
  out->indices_.resize(schema_.num_tables());
  out->offsets_.resize(schema_.num_tables());
  out->total_lookups_ = 0;

  // Columnar copy: one streaming pass per destination buffer (dense,
  // labels, then each table's offsets + indices) instead of touching every
  // table's arrays per sample. Each destination is sized exactly and
  // written front to back — nothing from a previous fill of the workspace
  // survives, and capacity is reused so steady-state refills are
  // allocation-free.
  out->dense_.resize(n * nd);
  for (size_t i = 0; i < n; ++i) {
    std::copy_n(dense_row(ids[i]), nd, out->dense_.data() + i * nd);
  }
  out->labels_.resize(n);
  for (size_t i = 0; i < n; ++i) out->labels_[i] = labels_[ids[i]];

  for (size_t t = 0; t < schema_.num_tables(); ++t) {
    const std::vector<uint32_t>& src_off = offsets_[t];
    const std::vector<uint32_t>& src_idx = indices_[t];
    std::vector<uint32_t>& dst_off = out->offsets_[t];
    std::vector<uint32_t>& dst_idx = out->indices_[t];
    dst_off.resize(n + 1);
    dst_off[0] = 0;
    size_t total = 0;
    for (size_t i = 0; i < n; ++i) {
      total += src_off[ids[i] + 1] - src_off[ids[i]];
      dst_off[i + 1] = static_cast<uint32_t>(total);
    }
    dst_idx.resize(total);
    uint32_t* dst = dst_idx.data();
    for (size_t i = 0; i < n; ++i) {
      const uint32_t b = src_off[ids[i]];
      const uint32_t e = src_off[ids[i] + 1];
      dst = std::copy(src_idx.data() + b, src_idx.data() + e, dst);
    }
    out->total_lookups_ += total;
  }
}

}  // namespace fae
