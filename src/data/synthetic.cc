#include "data/synthetic.h"

#include <cmath>
#include <numeric>

#include "stats/zipf.h"
#include "util/logging.h"
#include "util/random.h"

namespace fae {
namespace {

uint64_t Gcd(uint64_t a, uint64_t b) {
  while (b != 0) {
    a %= b;
    std::swap(a, b);
  }
  return a;
}

}  // namespace

SyntheticGenerator::SyntheticGenerator(DatasetSchema schema,
                                       SyntheticOptions options)
    : schema_(std::move(schema)), options_(options) {
  Xoshiro256 rng(options_.seed);
  mult_.resize(schema_.num_tables());
  shift_.resize(schema_.num_tables());
  for (size_t t = 0; t < schema_.num_tables(); ++t) {
    const uint64_t rows = schema_.table_rows[t];
    // Odd candidates, stepping by 2 until coprime with `rows`; m = 1 is
    // always reachable in principle so the loop terminates.
    uint64_t m = rng.NextBounded(rows) | 1;
    while (Gcd(m, rows) != 1) m += 2;
    mult_[t] = m;
    shift_[t] = rng.NextBounded(rows);
  }
  dense_weights_.resize(schema_.num_dense);
  for (double& w : dense_weights_) {
    w = rng.NextGaussian() * options_.dense_weight_scale /
        std::sqrt(static_cast<double>(std::max<size_t>(1, schema_.num_dense)));
  }
}

uint64_t SyntheticGenerator::RankToRowAt(size_t t, uint64_t rank,
                                         double phase) const {
  const uint64_t rows = schema_.table_rows[t];
  const uint64_t drift_shift = static_cast<uint64_t>(
      options_.popularity_drift * phase * static_cast<double>(rows));
  // Drift rotates rank space before the affine scatter, so the hot set
  // moves smoothly through the table as the dataset progresses.
  const uint64_t shifted = (rank + drift_shift) % rows;
  return (static_cast<__uint128_t>(mult_[t]) * shifted + shift_[t]) % rows;
}

double SyntheticGenerator::Affinity(size_t t, uint64_t row) const {
  SplitMix64 h(options_.seed ^ (0x9e3779b97f4a7c15ULL * (t + 1)) ^ row);
  const double u =
      static_cast<double>(h.Next() >> 11) * 0x1.0p-53;  // [0, 1)
  return (2.0 * u - 1.0) * options_.affinity_scale;
}

Dataset SyntheticGenerator::Generate(size_t num_inputs) const {
  Xoshiro256 rng(options_.seed + 1);
  std::vector<ZipfSampler> zipfs;
  zipfs.reserve(schema_.num_tables());
  for (size_t t = 0; t < schema_.num_tables(); ++t) {
    zipfs.emplace_back(schema_.table_rows[t], options_.zipf_exponent);
  }

  // Generate straight into the flat SoA layout — no per-sample SparseInput
  // is ever materialized. RNG call order (dense gaussians, per-table zipf
  // lookups, label bernoulli) and the affinity summation order match the
  // historical AoS generator exactly, so datasets are bit-identical.
  FlatDataset flat(schema_);
  std::vector<size_t> expected_lookups(schema_.num_tables(), num_inputs);
  if (schema_.sequential && !expected_lookups.empty()) {
    // Table 0 carries 1..max_history lookups per input; reserve the mean.
    expected_lookups[0] = num_inputs * (1 + schema_.max_history) / 2;
  }
  flat.Reserve(num_inputs, expected_lookups);
  for (size_t i = 0; i < num_inputs; ++i) {
    const double phase =
        num_inputs > 1
            ? static_cast<double>(i) / static_cast<double>(num_inputs - 1)
            : 0.0;
    double score = 0.0;
    for (size_t d = 0; d < schema_.num_dense; ++d) {
      const float v = static_cast<float>(rng.NextGaussian());
      flat.AppendDense(v);
      score += dense_weights_[d] * v;
    }
    size_t lookups = 0;
    // Planted logistic labeller over dense features and lookup affinities,
    // normalized by lookup count so sequential inputs are not biased. The
    // affinity sum folds into the lookup loop (same t-ascending,
    // j-ascending element order as the historical second pass).
    double emb_score = 0.0;
    for (size_t t = 0; t < schema_.num_tables(); ++t) {
      size_t n = 1;
      if (schema_.sequential && t == 0) {
        n = 1 + rng.NextBounded(schema_.max_history);
      }
      for (size_t j = 0; j < n; ++j) {
        const uint64_t rank = zipfs[t].Sample(rng);
        const uint64_t row = RankToRowAt(t, rank, phase);
        flat.AppendLookup(t, static_cast<uint32_t>(row));
      }
      lookups += n;
    }
    for (size_t t = 0; t < schema_.num_tables(); ++t) {
      for (uint32_t row : flat.PendingLookups(t)) {
        emb_score += Affinity(t, row);
      }
    }
    score += emb_score / std::sqrt(static_cast<double>(std::max<size_t>(1, lookups)));
    const double p = 1.0 / (1.0 + std::exp(-score));
    flat.FinishSample(rng.NextBernoulli(p) ? 1.0f : 0.0f);
  }
  return Dataset(std::move(flat));
}

}  // namespace fae
