#ifndef FAE_DATA_DATASET_IO_H_
#define FAE_DATA_DATASET_IO_H_

#include <string>

#include "data/dataset.h"
#include "util/statusor.h"

namespace fae {

/// Binary (de)serialization of datasets, so a synthetic dataset can be
/// generated once and reused across tools and training runs (the CLI's
/// `generate` / `train` workflow). Format: magic + version + schema +
/// samples, with a trailer that catches truncation.
class DatasetIo {
 public:
  static Status Save(const std::string& path, const Dataset& dataset);
  static StatusOr<Dataset> Load(const std::string& path);
};

}  // namespace fae

#endif  // FAE_DATA_DATASET_IO_H_
