#ifndef FAE_DATA_SCHEMA_H_
#define FAE_DATA_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fae {

/// Which of the paper's three workloads (Table I) a schema mirrors.
enum class WorkloadKind {
  kTaobaoTbsm,      // RMC1: TBSM on Taobao Alibaba
  kKaggleDlrm,      // RMC2: DLRM on Criteo Kaggle
  kTerabyteDlrm,    // RMC3: DLRM on Criteo Terabyte
};

/// How far the synthetic dataset is scaled down from the paper's sizes.
/// All experiments keep the paper's *structure* (table count, dim, skew);
/// scale only shrinks row counts and input counts so the suite runs on a
/// laptop. kPaper keeps Table I magnitudes (memory permitting).
enum class DatasetScale { kTiny, kSmall, kMedium, kPaper };

/// Shape of one synthetic recommendation dataset: how many dense features,
/// which embedding tables exist, and how sparse lookups are structured.
struct DatasetSchema {
  std::string name;
  WorkloadKind kind = WorkloadKind::kKaggleDlrm;

  size_t num_dense = 13;
  /// Rows of each embedding table; tables with >= 1 MB (paper §III-A1) are
  /// "large" and participate in hot/cold classification.
  std::vector<uint64_t> table_rows;
  size_t embedding_dim = 16;

  /// For sequential (TBSM) datasets: table 0 is the item table and each
  /// input carries a history of 1..max_history item lookups; other tables
  /// get one lookup per input. For DLRM datasets every table gets exactly
  /// one lookup.
  bool sequential = false;
  size_t max_history = 1;

  size_t num_tables() const { return table_rows.size(); }

  /// Total embedding parameter bytes across tables (float32).
  uint64_t TotalEmbeddingBytes() const;

  /// Bytes of one table.
  uint64_t TableBytes(size_t t) const {
    return table_rows[t] * embedding_dim * sizeof(float);
  }

  /// Tables at or above the paper's 1 MB "large" cutoff. Smaller tables are
  /// de-facto hot (paper §III-A1) since they trivially fit on any GPU.
  bool IsLargeTable(size_t t) const { return TableBytes(t) >= (1u << 20); }
};

/// Table I presets. `scale` shrinks the row/input counts; structure is
/// preserved. Row counts per table follow a log-spread so a few tables are
/// huge and most are small, as in the Criteo datasets.
DatasetSchema MakeKaggleLikeSchema(DatasetScale scale);
DatasetSchema MakeTerabyteLikeSchema(DatasetScale scale);
DatasetSchema MakeTaobaoLikeSchema(DatasetScale scale);

/// Schema for `kind` at `scale`.
DatasetSchema MakeSchema(WorkloadKind kind, DatasetScale scale);

/// Default number of synthetic training inputs for a scale (paper: 45M/80M/
/// 10M inputs; tiny/small shrink this to keep CI fast).
size_t DefaultNumInputs(WorkloadKind kind, DatasetScale scale);

/// Human-readable names for reports.
std::string_view WorkloadName(WorkloadKind kind);
std::string_view DatasetScaleName(DatasetScale scale);

}  // namespace fae

#endif  // FAE_DATA_SCHEMA_H_
