#include "data/minibatch.h"

#include <algorithm>

#include "util/logging.h"

namespace fae {

uint64_t MiniBatch::TotalLookups() const {
  uint64_t n = 0;
  for (const auto& v : indices) n += v.size();
  return n;
}

MiniBatch AssembleBatch(const Dataset& dataset,
                        const std::vector<uint64_t>& sample_ids) {
  const DatasetSchema& schema = dataset.schema();
  const size_t b = sample_ids.size();
  MiniBatch batch;
  batch.dense = Tensor(b, schema.num_dense);
  batch.indices.resize(schema.num_tables());
  batch.offsets.assign(schema.num_tables(),
                       std::vector<uint32_t>(1, 0));
  batch.labels.resize(b);

  for (size_t i = 0; i < b; ++i) {
    const SparseInput& s = dataset.sample(sample_ids[i]);
    FAE_CHECK_EQ(s.dense.size(), schema.num_dense);
    FAE_CHECK_EQ(s.indices.size(), schema.num_tables());
    std::copy(s.dense.begin(), s.dense.end(), batch.dense.row(i));
    batch.labels[i] = s.label;
    for (size_t t = 0; t < schema.num_tables(); ++t) {
      auto& idx = batch.indices[t];
      idx.insert(idx.end(), s.indices[t].begin(), s.indices[t].end());
      batch.offsets[t].push_back(static_cast<uint32_t>(idx.size()));
    }
  }
  return batch;
}

std::vector<MiniBatch> AssembleBatches(const Dataset& dataset,
                                       const std::vector<uint64_t>& sample_ids,
                                       size_t batch_size, bool hot) {
  FAE_CHECK_GE(batch_size, 1u);
  std::vector<MiniBatch> out;
  for (size_t begin = 0; begin < sample_ids.size(); begin += batch_size) {
    const size_t end = std::min(sample_ids.size(), begin + batch_size);
    std::vector<uint64_t> ids(sample_ids.begin() + begin,
                              sample_ids.begin() + end);
    MiniBatch b = AssembleBatch(dataset, ids);
    b.hot = hot;
    out.push_back(std::move(b));
  }
  return out;
}

}  // namespace fae
