#include "data/minibatch.h"

#include <algorithm>
#include <span>

#include "data/flat_dataset.h"
#include "util/logging.h"

namespace fae {

uint64_t MiniBatch::TotalLookups() const {
  // The CSR offsets already carry the per-table counts: back() - front()
  // is the table's lookup total, no index-vector walk needed.
  uint64_t n = 0;
  for (const auto& off : offsets) {
    if (!off.empty()) n += off.back() - off.front();
  }
  return n;
}

MiniBatch AssembleBatch(const Dataset& dataset,
                        const std::vector<uint64_t>& sample_ids) {
  const DatasetSchema& schema = dataset.schema();
  const FlatDataset& flat = dataset.flat();
  const size_t b = sample_ids.size();
  MiniBatch batch;
  batch.dense = Tensor(b, schema.num_dense);
  batch.indices.resize(schema.num_tables());
  batch.offsets.assign(schema.num_tables(),
                       std::vector<uint32_t>(1, 0));
  batch.labels.resize(b);

  for (size_t i = 0; i < b; ++i) {
    const uint64_t id = sample_ids[i];
    FAE_CHECK_LT(id, flat.size());
    const float* src = flat.dense_row(id);
    std::copy(src, src + schema.num_dense, batch.dense.row(i));
    batch.labels[i] = flat.label(id);
    for (size_t t = 0; t < schema.num_tables(); ++t) {
      const std::span<const uint32_t> l = flat.lookups(t, id);
      auto& idx = batch.indices[t];
      idx.insert(idx.end(), l.begin(), l.end());
      batch.offsets[t].push_back(static_cast<uint32_t>(idx.size()));
    }
  }
  return batch;
}

std::vector<MiniBatch> AssembleBatches(const Dataset& dataset,
                                       const std::vector<uint64_t>& sample_ids,
                                       size_t batch_size, bool hot) {
  FAE_CHECK_GE(batch_size, 1u);
  std::vector<MiniBatch> out;
  for (size_t begin = 0; begin < sample_ids.size(); begin += batch_size) {
    const size_t end = std::min(sample_ids.size(), begin + batch_size);
    std::vector<uint64_t> ids(sample_ids.begin() + begin,
                              sample_ids.begin() + end);
    MiniBatch b = AssembleBatch(dataset, ids);
    b.hot = hot;
    out.push_back(std::move(b));
  }
  return out;
}

}  // namespace fae
