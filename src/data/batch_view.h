#ifndef FAE_DATA_BATCH_VIEW_H_
#define FAE_DATA_BATCH_VIEW_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "data/flat_dataset.h"
#include "tensor/tensor.h"

namespace fae {

struct MiniBatch;

/// One embedding table's slice of a batch: the concatenated lookup indices
/// plus B+1 CSR offsets. Offsets are *absolute* positions into the backing
/// FlatDataset's per-table index buffer, so a view built over samples
/// [begin, end) has offsets.front() == the dataset-level start, not 0.
/// Kernels rebase with `offsets.front()` (the relative-offset contract);
/// legacy zero-based buffers satisfy the same contract trivially.
struct TableView {
  std::span<const uint32_t> indices;
  std::span<const uint32_t> offsets;  // batch_size + 1 entries
};

/// A non-owning mini-batch: spans into a FlatDataset (or, via the
/// conversion shim, into a legacy MiniBatch's buffers). Because batches are
/// consecutive sample ranges of the epoch's gathered dataset, building a
/// whole epoch of views copies nothing — epoch setup is O(num_batches)
/// span arithmetic instead of an O(dataset) reassembly.
///
/// Invariants:
///   - the view covers a contiguous sample range of its backing store;
///   - the backing store outlives every view into it (views into a
///     FlatDataset stay valid across moves of the dataset object, since
///     the underlying vector heap buffers do not move);
///   - `hot` mirrors MiniBatch::hot: a batch is entirely hot or entirely
///     cold (paper §II-B(1)).
struct BatchView {
  MatView dense;                  // [B, num_dense]
  std::span<const float> labels;  // [B]
  std::vector<TableView> tables;
  bool hot = false;
  /// Cached at construction — O(1), never recomputed in hot loops.
  uint64_t total_lookups = 0;

  BatchView() = default;

  /// Compat shim: views a legacy MiniBatch's owned buffers (offsets are
  /// zero-based there, which the relative-offset contract subsumes). The
  /// MiniBatch must outlive the view.
  /*implicit*/ BatchView(const MiniBatch& batch);

  size_t batch_size() const { return labels.size(); }
  size_t num_tables() const { return tables.size(); }
  std::span<const uint32_t> indices(size_t t) const {
    return tables[t].indices;
  }
  std::span<const uint32_t> offsets(size_t t) const {
    return tables[t].offsets;
  }

  /// Total embedding lookups across tables; cached, O(1).
  uint64_t TotalLookups() const { return total_lookups; }
};

/// Views samples [begin, end) of `flat` as one batch. Zero copies.
BatchView MakeBatchView(const FlatDataset& flat, size_t begin, size_t end,
                        bool hot);

/// Row-id extraction for the lookahead oracle: invokes fn(table, row) for
/// every embedding lookup of a staged batch view, in table-major sample
/// order — the exact reference sequence the trainer will issue, which is
/// what makes the oracle window exact rather than predictive.
void ForEachLookup(const BatchView& view,
                   const std::function<void(size_t, uint32_t)>& fn);

/// The same scan over samples `ids` of `flat` — the form the oracle uses
/// to see *past* the staging ring (the window may be deeper than the ring,
/// so it reads the CSR source directly instead of waiting for a slot).
void ForEachLookup(const FlatDataset& flat, std::span<const uint64_t> ids,
                   const std::function<void(size_t, uint32_t)>& fn);

/// Splits `flat` into consecutive batches of `batch_size` (last may be
/// smaller), all sharing `hot`. Zero copies — the flat-layout replacement
/// for AssembleBatches.
std::vector<BatchView> MakeBatchViews(const FlatDataset& flat,
                                      size_t batch_size, bool hot);

}  // namespace fae

#endif  // FAE_DATA_BATCH_VIEW_H_
