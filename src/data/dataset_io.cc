#include "data/dataset_io.h"

#include "util/file_io.h"
#include "util/string_util.h"

namespace fae {
namespace {

constexpr uint32_t kMagic = 0x44454146;  // "FAED"
// v2 added the crash-safety envelope: atomic temp+rename writes and the
// whole-file CRC-32 footer.
constexpr uint32_t kVersion = 2;
constexpr uint32_t kTrailer = 0x444e4544;  // "DEND"

}  // namespace

Status DatasetIo::Save(const std::string& path, const Dataset& dataset) {
  FAE_ASSIGN_OR_RETURN(BinaryWriter w, BinaryWriter::OpenAtomic(path));
  FAE_RETURN_IF_ERROR(w.WriteU32(kMagic));
  FAE_RETURN_IF_ERROR(w.WriteU32(kVersion));

  const DatasetSchema& s = dataset.schema();
  FAE_RETURN_IF_ERROR(w.WriteString(s.name));
  FAE_RETURN_IF_ERROR(w.WriteU32(static_cast<uint32_t>(s.kind)));
  FAE_RETURN_IF_ERROR(w.WriteU64(s.num_dense));
  FAE_RETURN_IF_ERROR(w.WriteVector(s.table_rows));
  FAE_RETURN_IF_ERROR(w.WriteU64(s.embedding_dim));
  FAE_RETURN_IF_ERROR(w.WriteU32(s.sequential ? 1 : 0));
  FAE_RETURN_IF_ERROR(w.WriteU64(s.max_history));

  // Streams the flat SoA buffers directly. The on-disk layout is unchanged
  // from the AoS WriteVector path byte for byte: each length-prefixed
  // vector is WriteU64(size) + raw bytes, which the flat spans provide
  // without materializing a SparseInput per sample.
  const FlatDataset& flat = dataset.flat();
  FAE_RETURN_IF_ERROR(w.WriteU64(flat.size()));
  for (size_t i = 0; i < flat.size(); ++i) {
    FAE_RETURN_IF_ERROR(w.WriteU64(s.num_dense));
    FAE_RETURN_IF_ERROR(
        w.WriteBytes(flat.dense_row(i), s.num_dense * sizeof(float)));
    for (size_t t = 0; t < s.num_tables(); ++t) {
      const std::span<const uint32_t> l = flat.lookups(t, i);
      FAE_RETURN_IF_ERROR(w.WriteU64(l.size()));
      FAE_RETURN_IF_ERROR(w.WriteBytes(l.data(), l.size() * sizeof(uint32_t)));
    }
    FAE_RETURN_IF_ERROR(w.WriteF32(flat.label(i)));
  }
  FAE_RETURN_IF_ERROR(w.WriteU32(kTrailer));
  const uint32_t crc = w.crc();
  FAE_RETURN_IF_ERROR(w.WriteU32(crc));
  return w.Commit();
}

StatusOr<Dataset> DatasetIo::Load(const std::string& path) {
  // Whole-file checksum first: corruption anywhere in the file is caught
  // before any samples are deserialized.
  FAE_RETURN_IF_ERROR(VerifyFileIntegrity(path));
  FAE_ASSIGN_OR_RETURN(BinaryReader r, BinaryReader::Open(path));
  FAE_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kMagic) {
    return Status::DataLoss("not a FAE dataset file: " + path);
  }
  FAE_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kVersion) {
    return Status::DataLoss(
        StrFormat("unsupported dataset format version %u", version));
  }

  DatasetSchema s;
  FAE_ASSIGN_OR_RETURN(s.name, r.ReadString());
  FAE_ASSIGN_OR_RETURN(uint32_t kind, r.ReadU32());
  if (kind > static_cast<uint32_t>(WorkloadKind::kTerabyteDlrm)) {
    return Status::DataLoss("invalid workload kind in dataset file");
  }
  s.kind = static_cast<WorkloadKind>(kind);
  FAE_ASSIGN_OR_RETURN(s.num_dense, r.ReadU64());
  FAE_ASSIGN_OR_RETURN(s.table_rows, r.ReadVector<uint64_t>());
  FAE_ASSIGN_OR_RETURN(s.embedding_dim, r.ReadU64());
  FAE_ASSIGN_OR_RETURN(uint32_t sequential, r.ReadU32());
  s.sequential = sequential != 0;
  FAE_ASSIGN_OR_RETURN(s.max_history, r.ReadU64());
  if (s.num_tables() == 0 || s.embedding_dim == 0) {
    return Status::DataLoss("degenerate schema in dataset file");
  }

  FAE_ASSIGN_OR_RETURN(uint64_t count, r.ReadU64());
  // Deserializes straight into the flat builder — the per-sample vectors
  // that the v2 format length-prefixes land in the contiguous SoA buffers
  // without an AoS intermediate.
  FlatDataset flat(s);
  std::vector<float> dense_buf;
  std::vector<uint32_t> index_buf;
  for (uint64_t i = 0; i < count; ++i) {
    FAE_ASSIGN_OR_RETURN(dense_buf, r.ReadVector<float>());
    if (dense_buf.size() != s.num_dense) {
      return Status::DataLoss("dense width mismatch in dataset file");
    }
    for (float v : dense_buf) flat.AppendDense(v);
    for (size_t t = 0; t < s.num_tables(); ++t) {
      FAE_ASSIGN_OR_RETURN(index_buf, r.ReadVector<uint32_t>());
      for (uint32_t row : index_buf) {
        if (row >= s.table_rows[t]) {
          return Status::DataLoss("lookup out of table range in dataset file");
        }
        flat.AppendLookup(t, row);
      }
    }
    FAE_ASSIGN_OR_RETURN(float label, r.ReadF32());
    flat.FinishSample(label);
  }
  FAE_ASSIGN_OR_RETURN(uint32_t trailer, r.ReadU32());
  if (trailer != kTrailer) {
    return Status::DataLoss("dataset file trailer missing (truncated?)");
  }
  return Dataset(std::move(flat));
}

}  // namespace fae
