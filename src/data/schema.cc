#include "data/schema.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace fae {
namespace {

// Geometrically decaying table sizes: a handful of huge tables and a long
// tail of small ones, mirroring the Criteo datasets where the largest
// table holds ~10M rows and the smallest a few dozen.
std::vector<uint64_t> LogSpreadRows(size_t num_tables, uint64_t largest,
                                    double decades) {
  std::vector<uint64_t> rows(num_tables);
  for (size_t i = 0; i < num_tables; ++i) {
    const double frac =
        num_tables > 1 ? static_cast<double>(i) / (num_tables - 1) : 0.0;
    const double r = static_cast<double>(largest) *
                     std::pow(10.0, -decades * frac);
    rows[i] = std::max<uint64_t>(8, static_cast<uint64_t>(std::llround(r)));
  }
  return rows;
}

uint64_t LargestRowsFor(WorkloadKind kind, DatasetScale scale) {
  // Paper Table I: Kaggle 10.1M, Terabyte 73.1M, Taobao 4.1M (largest
  // single-table row counts).
  switch (scale) {
    case DatasetScale::kTiny:
      return 3000;
    case DatasetScale::kSmall:
      return 60000;
    case DatasetScale::kMedium:
      return 600000;
    case DatasetScale::kPaper:
      switch (kind) {
        case WorkloadKind::kKaggleDlrm:
          return 10100000;
        case WorkloadKind::kTerabyteDlrm:
          return 73100000;
        case WorkloadKind::kTaobaoTbsm:
          return 4100000;
      }
  }
  return 60000;
}

}  // namespace

uint64_t DatasetSchema::TotalEmbeddingBytes() const {
  uint64_t total = 0;
  for (size_t t = 0; t < table_rows.size(); ++t) total += TableBytes(t);
  return total;
}

DatasetSchema MakeKaggleLikeSchema(DatasetScale scale) {
  DatasetSchema s;
  s.name = "criteo-kaggle-like";
  s.kind = WorkloadKind::kKaggleDlrm;
  s.num_dense = 13;
  s.embedding_dim = 16;
  s.table_rows =
      LogSpreadRows(26, LargestRowsFor(WorkloadKind::kKaggleDlrm, scale), 4.5);
  return s;
}

DatasetSchema MakeTerabyteLikeSchema(DatasetScale scale) {
  DatasetSchema s;
  s.name = "criteo-terabyte-like";
  s.kind = WorkloadKind::kTerabyteDlrm;
  s.num_dense = 13;
  s.embedding_dim = 64;
  s.table_rows = LogSpreadRows(
      26, LargestRowsFor(WorkloadKind::kTerabyteDlrm, scale), 5.0);
  return s;
}

DatasetSchema MakeTaobaoLikeSchema(DatasetScale scale) {
  DatasetSchema s;
  s.name = "taobao-alibaba-like";
  s.kind = WorkloadKind::kTaobaoTbsm;
  s.num_dense = 3;
  s.embedding_dim = 16;
  const uint64_t items = LargestRowsFor(WorkloadKind::kTaobaoTbsm, scale);
  // Items, users, categories: categories are few, users mid-sized.
  s.table_rows = {items, std::max<uint64_t>(16, items / 4),
                  std::max<uint64_t>(16, items / 400)};
  s.sequential = true;
  s.max_history = 21;  // paper footnote 1: up to 21 sub-inputs per input
  return s;
}

DatasetSchema MakeSchema(WorkloadKind kind, DatasetScale scale) {
  switch (kind) {
    case WorkloadKind::kTaobaoTbsm:
      return MakeTaobaoLikeSchema(scale);
    case WorkloadKind::kKaggleDlrm:
      return MakeKaggleLikeSchema(scale);
    case WorkloadKind::kTerabyteDlrm:
      return MakeTerabyteLikeSchema(scale);
  }
  FAE_LOG(Fatal) << "unknown workload kind";
  return {};
}

size_t DefaultNumInputs(WorkloadKind kind, DatasetScale scale) {
  switch (scale) {
    case DatasetScale::kTiny:
      return 2000;
    case DatasetScale::kSmall:
      return 20000;
    case DatasetScale::kMedium:
      return 200000;
    case DatasetScale::kPaper:
      switch (kind) {
        case WorkloadKind::kKaggleDlrm:
          return 45000000;
        case WorkloadKind::kTerabyteDlrm:
          return 80000000;
        case WorkloadKind::kTaobaoTbsm:
          return 10000000;
      }
  }
  return 20000;
}

std::string_view WorkloadName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kTaobaoTbsm:
      return "RMC1/TBSM/Taobao";
    case WorkloadKind::kKaggleDlrm:
      return "RMC2/DLRM/Kaggle";
    case WorkloadKind::kTerabyteDlrm:
      return "RMC3/DLRM/Terabyte";
  }
  return "unknown";
}

std::string_view DatasetScaleName(DatasetScale scale) {
  switch (scale) {
    case DatasetScale::kTiny:
      return "tiny";
    case DatasetScale::kSmall:
      return "small";
    case DatasetScale::kMedium:
      return "medium";
    case DatasetScale::kPaper:
      return "paper";
  }
  return "unknown";
}

}  // namespace fae
