#ifndef FAE_DATA_DATASET_H_
#define FAE_DATA_DATASET_H_

#include <cstdint>
#include <vector>

#include "data/flat_dataset.h"
#include "data/sample.h"
#include "data/schema.h"
#include "stats/access_profile.h"

namespace fae {

/// In-memory dataset: a schema plus its training inputs. The paper
/// preprocesses the whole dataset once (§III-B); keeping it in memory makes
/// the static FAE passes and the training epochs deterministic and fast.
///
/// Storage is a flat structure-of-arrays (`FlatDataset`) — every pass that
/// walks the dataset (Embedding Logger, Input Processor, epochs) streams
/// three contiguous buffers instead of chasing per-sample vectors. The
/// legacy AoS `SparseInput` survives only as a conversion shim at the
/// edges: `sample(i)` materializes one on demand.
class Dataset {
 public:
  explicit Dataset(FlatDataset flat) : flat_(std::move(flat)) {}

  /// Legacy AoS construction — converts once into the flat layout.
  Dataset(DatasetSchema schema, std::vector<SparseInput> samples)
      : flat_(FlatDataset::FromSamples(std::move(schema), samples)) {}

  const DatasetSchema& schema() const { return flat_.schema(); }
  size_t size() const { return flat_.size(); }

  /// Flat SoA storage — the zero-copy path for batch views and streaming
  /// passes.
  const FlatDataset& flat() const { return flat_; }

  /// Materializes sample i as a legacy `SparseInput` (allocates — compat
  /// shim only; hot paths stream `flat()` instead).
  SparseInput sample(size_t i) const { return flat_.Sample(i); }

  /// Builds an access profile from the given sample indices (the Embedding
  /// Logger's job, §III-A2). Passing all indices profiles the full dataset.
  AccessProfile ProfileAccesses(const std::vector<uint64_t>& which) const;

  /// Convenience: profile every sample.
  AccessProfile ProfileAllAccesses() const;

  /// Index lists [0, n*(1-test_fraction)) and the remainder, for
  /// train/test splits matching the paper's per-dataset evaluation.
  struct Split {
    std::vector<uint64_t> train;
    std::vector<uint64_t> test;
  };
  Split MakeSplit(double test_fraction) const;

 private:
  FlatDataset flat_;
};

}  // namespace fae

#endif  // FAE_DATA_DATASET_H_
