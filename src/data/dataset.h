#ifndef FAE_DATA_DATASET_H_
#define FAE_DATA_DATASET_H_

#include <cstdint>
#include <vector>

#include "data/sample.h"
#include "data/schema.h"
#include "stats/access_profile.h"

namespace fae {

/// In-memory dataset: a schema plus its training inputs. The paper
/// preprocesses the whole dataset once (§III-B); keeping it in memory makes
/// the static FAE passes and the training epochs deterministic and fast.
class Dataset {
 public:
  Dataset(DatasetSchema schema, std::vector<SparseInput> samples)
      : schema_(std::move(schema)), samples_(std::move(samples)) {}

  const DatasetSchema& schema() const { return schema_; }
  size_t size() const { return samples_.size(); }
  const SparseInput& sample(size_t i) const { return samples_[i]; }
  const std::vector<SparseInput>& samples() const { return samples_; }

  /// Builds an access profile from the given sample indices (the Embedding
  /// Logger's job, §III-A2). Passing all indices profiles the full dataset.
  AccessProfile ProfileAccesses(const std::vector<uint64_t>& which) const;

  /// Convenience: profile every sample.
  AccessProfile ProfileAllAccesses() const;

  /// Index lists [0, n*(1-test_fraction)) and the remainder, for
  /// train/test splits matching the paper's per-dataset evaluation.
  struct Split {
    std::vector<uint64_t> train;
    std::vector<uint64_t> test;
  };
  Split MakeSplit(double test_fraction) const;

 private:
  DatasetSchema schema_;
  std::vector<SparseInput> samples_;
};

}  // namespace fae

#endif  // FAE_DATA_DATASET_H_
