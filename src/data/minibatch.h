#ifndef FAE_DATA_MINIBATCH_H_
#define FAE_DATA_MINIBATCH_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "tensor/tensor.h"

namespace fae {

/// A training mini-batch in model-ready layout: a dense matrix plus one
/// CSR (indices/offsets) lookup list per embedding table.
///
/// FAE's central invariant (paper §II-B(1)): a mini-batch is *entirely*
/// hot or *entirely* cold — `hot` records which; mixed batches would stall
/// the GPU on CPU-resident embeddings.
struct MiniBatch {
  Tensor dense;  // [B, num_dense]
  /// Per table: concatenated lookup indices.
  std::vector<std::vector<uint32_t>> indices;
  /// Per table: B+1 offsets into `indices[t]`.
  std::vector<std::vector<uint32_t>> offsets;
  std::vector<float> labels;
  bool hot = false;

  size_t batch_size() const { return labels.size(); }

  /// Total embedding lookups across tables.
  uint64_t TotalLookups() const;
};

/// Assembles the samples at `sample_ids` of `dataset` into a MiniBatch.
MiniBatch AssembleBatch(const Dataset& dataset,
                        const std::vector<uint64_t>& sample_ids);

/// Splits `sample_ids` into consecutive chunks of `batch_size` (the last
/// chunk may be smaller) and assembles each. Every returned batch carries
/// `hot` as given.
std::vector<MiniBatch> AssembleBatches(const Dataset& dataset,
                                       const std::vector<uint64_t>& sample_ids,
                                       size_t batch_size, bool hot);

}  // namespace fae

#endif  // FAE_DATA_MINIBATCH_H_
