// Seed-layout (pre-flat AoS) baselines for the figure benches, so each
// figure can report the flat SoA layout's gain next to the paper-shape
// numbers. Verbatim copies of the data layer before the flat rework —
// do not "improve" these; their value is being what the repo shipped.
//
// pipeline_throughput.cc keeps its own self-contained copies (it also
// needs the seed pack/step paths); these are the two passes the figure
// benches share.

#ifndef FAE_BENCH_SEED_BASELINE_H_
#define FAE_BENCH_SEED_BASELINE_H_

#include <cstdint>
#include <vector>

#include "core/embedding_classifier.h"
#include "data/dataset.h"
#include "stats/access_profile.h"

namespace fae {
namespace bench {

/// Materializes the AoS sample store the seed data layer kept resident
/// (one SparseInput of nested vectors per sample).
inline std::vector<SparseInput> MaterializeAos(const Dataset& dataset) {
  std::vector<SparseInput> aos;
  aos.reserve(dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) aos.push_back(dataset.sample(i));
  return aos;
}

/// Seed Embedding Logger: per-sample nested-vector walk (embedding_logger.cc
/// before the flat rework).
inline AccessProfile SeedProfile(const DatasetSchema& schema,
                                 const std::vector<SparseInput>& samples,
                                 const std::vector<uint64_t>& sample_ids) {
  AccessProfile profile(schema.table_rows);
  for (uint64_t id : sample_ids) {
    const SparseInput& s = samples[id];
    for (size_t t = 0; t < s.indices.size(); ++t) {
      for (uint32_t row : s.indices[t]) profile.Record(t, row);
    }
  }
  return profile;
}

/// Seed Input Processor classification: the serial inner loop of the
/// pre-flat Classify (input_processor.cc before the rework).
inline void SeedClassify(const std::vector<SparseInput>& samples,
                         const HotSet& hot_set,
                         const std::vector<uint64_t>& which,
                         std::vector<uint64_t>* hot_ids,
                         std::vector<uint64_t>* cold_ids) {
  hot_ids->clear();
  cold_ids->clear();
  for (uint64_t id : which) {
    const SparseInput& s = samples[id];
    bool hot = true;
    for (size_t t = 0; t < s.indices.size() && hot; ++t) {
      for (uint32_t row : s.indices[t]) {
        if (!hot_set.IsHot(t, row)) {
          hot = false;
          break;
        }
      }
    }
    (hot ? hot_ids : cold_ids)->push_back(id);
  }
}

}  // namespace bench
}  // namespace fae

#endif  // FAE_BENCH_SEED_BASELINE_H_
