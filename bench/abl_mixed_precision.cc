// Ablation (paper §V): the paper dismisses mixed-precision approaches
// because "approaches that change the data representation ... require
// accuracy revalidation across a variety of models and datasets". This
// harness *performs* that revalidation: it trains with embeddings stored
// at binary16 (rounding every updated row through fp16, as NvOPT-style
// storage would) and compares the learning outcome against fp32 tables.
//
// Expected: for these workloads fp16 embedding storage costs little
// accuracy (consistent with NVIDIA shipping it) — the paper's objection
// is about the *burden of proof*, which this bench discharges per run.

#include <cstdio>

#include "bench/bench_util.h"
#include "engine/trainer.h"
#include "models/factory.h"

namespace fae {
namespace {

void Run(const bench::Args& args) {
  const size_t inputs = args.GetInt("inputs", 12000);
  const size_t epochs = args.GetInt("epochs", 2);
  const DatasetScale scale = DatasetScale::kTiny;

  bench::PrintHeader(
      "Ablation: fp32 vs fp16 embedding storage (accuracy revalidation)");
  std::printf("%-22s %12s %12s %10s %10s\n", "workload", "fp32-test%",
              "fp16-test%", "fp32-auc", "fp16-auc");

  for (WorkloadKind kind : bench::AllWorkloads()) {
    Dataset dataset = bench::MakeWorkloadDataset(kind, scale, inputs);
    Dataset::Split split = dataset.MakeSplit(0.15);

    double acc[2];
    double auc[2];
    for (int fp16 = 0; fp16 < 2; ++fp16) {
      TrainOptions opt;
      opt.per_gpu_batch = 64;
      opt.epochs = epochs;
      opt.eval_samples = 1024;
      opt.fp16_embeddings = fp16 != 0;
      auto model = MakeModel(dataset.schema(), false, 5);
      Trainer trainer(model.get(), MakePaperServer(1), opt);
      TrainReport report = trainer.TrainBaseline(dataset, split);
      acc[fp16] = report.final_test_acc;
      auc[fp16] = report.final_test_auc;
    }
    std::printf("%-22s %11.2f%% %11.2f%% %10.3f %10.3f\n",
                std::string(WorkloadName(kind)).c_str(), 100 * acc[0],
                100 * acc[1], auc[0], auc[1]);
  }
  std::printf(
      "\nReading: embeddings tolerate fp16 storage on these tasks (deltas\n"
      "within eval noise). The paper's point stands as a process cost —\n"
      "every new model/dataset pair needs this check — while FAE keeps\n"
      "full precision by construction.\n");
}

}  // namespace
}  // namespace fae

int main(int argc, char** argv) {
  fae::bench::Args args(argc, argv);
  fae::Run(args);
  return 0;
}
