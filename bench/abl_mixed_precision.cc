// Quantized cold-row storage ablation (the PR gate for --cold-precision,
// DESIGN.md §14). The paper dismisses representation-changing approaches
// because they "require accuracy revalidation across a variety of models
// and datasets"; FAE's partition sidesteps the objection — only the cold
// minority is quantized, the hot majority and all optimizer state stay
// fp32 — and this harness measures exactly what that buys and what it
// costs, against the real kernels and the real engine.
//
// Four things are checked, and all fail the binary (ctest's
// bench_quant_smoke runs it with --smoke):
//   1. Compression: the int8 cold store must be >= 3.0x smaller than the
//      same rows at fp32, fp16 >= 1.9x. The int8 gate runs on the dim-64
//      Terabyte workload (RMC3): at dim 16 the per-row scale/zero-point
//      overhead caps int8 at 64/24 = 2.67x, below the gate by design.
//   2. Error: per-element int8 reconstruction error is bounded by the
//      per-row scale/2 (plus rounding slop), across magnitude ranges from
//      1e-3 to 1e3; max/mean abs error is reported for int8 and fp16.
//   3. Hot-path bit-identity: hot-row gathers from a compressed table are
//      bit-identical to the plain fp32 table, and a full run_math FAE run
//      whose plan keeps everything hot produces bit-identical master
//      tables in all three --cold-precision modes.
//   4. Speedup: with the reclaimed cold bytes credited back to the budget
//      (the calibrator's feedback loop), cost-only int8 FAE must beat
//      fp32 FAE by >= 1.1x end to end on the modeled wall — the finer
//      threshold moves more of the access stream onto the GPUs.
//
// Usage:
//   abl_mixed_precision [--out=BENCH_quant.json] [--inputs=4000]
//                       [--plan-inputs=8000] [--batch=128] [--gpus=4]
//                       [--budget-kb=224] [--epochs=2] [--smoke]
//
// run_math cases use a fixed seed; cost-only cases use the simulator's
// modeled seconds. Results are identical run to run.

#include <sys/resource.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/fae_pipeline.h"
#include "data/synthetic.h"
#include "embedding/cold_precision.h"
#include "embedding/embedding_table.h"
#include "engine/trainer.h"
#include "models/factory.h"
#include "tensor/kernels.h"
#include "util/random.h"
#include "util/string_util.h"

namespace fae {
namespace {

constexpr double kInt8Gate = 3.0;
constexpr double kFp16Gate = 1.9;
constexpr double kSpeedupGate = 1.1;

struct ErrorStats {
  double max_abs = 0.0;
  double mean_abs = 0.0;
  bool bound_ok = true;  // int8: per element |err| <= scale/2 + slop
};

struct CaseResult {
  ColdPrecision precision = ColdPrecision::kFp32;
  uint64_t cold_rows = 0;
  uint64_t cold_store_bytes = 0;
  uint64_t cold_fp32_bytes = 0;  // the same rows at fp32 (the numerator)
  uint64_t resident_bytes = 0;   // actual table footprint, slot maps included
  uint64_t effective_hot_budget = 0;
  uint64_t reclaimed_bytes = 0;
  double modeled_seconds = 0.0;
  double step_seconds = 0.0;
  double final_test_acc = 0.0;
  long rss_peak_kb = 0;  // getrusage high-water mark (monotone; context only)
};

long PeakRssKb() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return ru.ru_maxrss;  // KiB on Linux
}

// --- 1. Kernel-level error study ------------------------------------------

ErrorStats MeasureError(ColdPrecision precision, size_t rows, size_t dim,
                        Xoshiro256& rng) {
  ErrorStats st;
  std::vector<float> x(dim), back(dim);
  std::vector<uint8_t> q8(dim);
  std::vector<uint16_t> q16(dim);
  const double magnitudes[] = {1e-3, 1.0, 1e3};
  double sum = 0.0;
  size_t count = 0;
  for (double mag : magnitudes) {
    for (size_t r = 0; r < rows; ++r) {
      for (size_t i = 0; i < dim; ++i) {
        x[i] = static_cast<float>((2.0 * rng.NextDouble() - 1.0) * mag);
      }
      float scale = 0.0f, zero = 0.0f;
      if (precision == ColdPrecision::kInt8) {
        kernels::QuantizeRowI8(dim, x.data(), q8.data(), &scale, &zero);
        kernels::DequantRowI8(dim, q8.data(), scale, zero, back.data());
      } else {
        kernels::QuantizeRowF16(dim, x.data(), q16.data());
        kernels::DequantRowF16(dim, q16.data(), back.data());
      }
      for (size_t i = 0; i < dim; ++i) {
        const double err = std::fabs(static_cast<double>(back[i]) -
                                     static_cast<double>(x[i]));
        st.max_abs = std::max(st.max_abs, err);
        sum += err;
        ++count;
        if (precision == ColdPrecision::kInt8) {
          // scale/2 from rounding to the nearest code, plus a few ulp of
          // slop from the float affine round trip.
          const double bound =
              0.5 * scale + 4.0 * std::fabs(zero) * 1.2e-7 + 1e-12;
          if (err > bound) st.bound_ok = false;
        }
      }
    }
  }
  st.mean_abs = count > 0 ? sum / static_cast<double>(count) : 0.0;
  return st;
}

// --- 3a. Direct hot-row gather identity -----------------------------------

bool HotGatherBitIdentical(size_t rows, size_t dim, ColdPrecision precision) {
  Xoshiro256 rng(11);
  EmbeddingTable plain(rows, dim, rng);
  EmbeddingTable packed = plain;  // same values, then compress one copy
  std::vector<uint8_t> mask(rows, 0);
  for (size_t r = 0; r < rows; r += 4) mask[r] = 1;  // every 4th row hot
  packed.CompressCold(mask, precision);
  std::vector<float> a(dim), b(dim);
  for (size_t r = 0; r < rows; r += 4) {
    std::fill(a.begin(), a.end(), 0.25f);
    std::fill(b.begin(), b.end(), 0.25f);
    plain.AddRowTo(r, a.data());
    packed.AddRowTo(r, b.data());
    if (std::memcmp(a.data(), b.data(), dim * sizeof(float)) != 0)
      return false;
    plain.ReadRowInto(r, a.data());
    packed.ReadRowInto(r, b.data());
    if (std::memcmp(a.data(), b.data(), dim * sizeof(float)) != 0)
      return false;
  }
  return true;
}

// --- JSON ------------------------------------------------------------------

void WriteJson(const std::string& path, const std::vector<CaseResult>& cases,
               const ErrorStats& err8, const ErrorStats& err16,
               double int8_ratio, double fp16_ratio, double speedup,
               double hot_frac_fp32, double hot_frac_int8,
               bool hot_bit_identical, bool gate_ok) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(2);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"suite\": \"abl_mixed_precision\",\n");
  std::fprintf(f, "  \"workload\": \"terabyte_dlrm_tiny\",\n");
  std::fprintf(f, "  \"criterion_int8_compression\": %.3f,\n", int8_ratio);
  std::fprintf(f, "  \"criterion_int8_gate\": %.2f,\n", kInt8Gate);
  std::fprintf(f, "  \"criterion_fp16_compression\": %.3f,\n", fp16_ratio);
  std::fprintf(f, "  \"criterion_fp16_gate\": %.2f,\n", kFp16Gate);
  std::fprintf(f, "  \"criterion_speedup\": %.3f,\n", speedup);
  std::fprintf(f, "  \"criterion_speedup_gate\": %.2f,\n", kSpeedupGate);
  std::fprintf(f, "  \"criterion_error_bound_ok\": %s,\n",
               err8.bound_ok ? "true" : "false");
  std::fprintf(f, "  \"criterion_hot_bit_identical\": %s,\n",
               hot_bit_identical ? "true" : "false");
  std::fprintf(f, "  \"criterion_ok\": %s,\n", gate_ok ? "true" : "false");
  std::fprintf(f, "  \"hot_fraction_fp32_plan\": %.4f,\n", hot_frac_fp32);
  std::fprintf(f, "  \"hot_fraction_int8_plan\": %.4f,\n", hot_frac_int8);
  std::fprintf(f,
               "  \"quant_error\": {\"int8_max_abs\": %.9g, "
               "\"int8_mean_abs\": %.9g, \"fp16_max_abs\": %.9g, "
               "\"fp16_mean_abs\": %.9g},\n",
               err8.max_abs, err8.mean_abs, err16.max_abs, err16.mean_abs);
  std::fprintf(f, "  \"cases\": [\n");
  for (size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& c = cases[i];
    std::fprintf(
        f,
        "    {\"cold_precision\": \"%s\", \"cold_rows\": %llu, "
        "\"cold_store_bytes\": %llu, \"cold_fp32_bytes\": %llu, "
        "\"resident_bytes\": %llu, \"effective_hot_budget\": %llu, "
        "\"reclaimed_bytes\": %llu, \"modeled_seconds\": %.9f, "
        "\"step_seconds\": %.9f, \"final_test_acc\": %.6f, "
        "\"rss_peak_kb\": %ld}%s\n",
        std::string(ColdPrecisionName(c.precision)).c_str(),
        static_cast<unsigned long long>(c.cold_rows),
        static_cast<unsigned long long>(c.cold_store_bytes),
        static_cast<unsigned long long>(c.cold_fp32_bytes),
        static_cast<unsigned long long>(c.resident_bytes),
        static_cast<unsigned long long>(c.effective_hot_budget),
        static_cast<unsigned long long>(c.reclaimed_bytes), c.modeled_seconds,
        c.step_seconds, c.final_test_acc, c.rss_peak_kb,
        i + 1 < cases.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int Run(int argc, char** argv) {
  bench::Args args(argc, argv);
  const bool smoke = args.GetBool("smoke", false);
  const size_t inputs =
      static_cast<size_t>(args.GetNonNegativeInt("inputs", smoke ? 1200 : 4000));
  const size_t plan_inputs =
      static_cast<size_t>(args.GetPositiveInt("plan-inputs", smoke ? 2500 : 8000));
  const size_t batch = static_cast<size_t>(args.GetPositiveInt("batch", 128));
  const int gpus = static_cast<int>(args.GetPositiveInt("gpus", 4));
  const size_t epochs = static_cast<size_t>(args.GetPositiveInt("epochs", 2));
  // Default sits where the feedback loop is visible: fp32 planning only
  // fits a coarse threshold, the int8 reclaimed credit admits a fine one.
  const uint64_t budget_bytes = args.GetPositiveInt("budget-kb", 224) * 1024ull;

  bench::PrintHeader(
      "Ablation: quantized cold-row storage (--cold-precision)");

  // 1. Kernel round-trip error, real gather/quantize kernels.
  Xoshiro256 err_rng(3);
  const ErrorStats err8 =
      MeasureError(ColdPrecision::kInt8, smoke ? 64 : 256, 64, err_rng);
  const ErrorStats err16 =
      MeasureError(ColdPrecision::kFp16, smoke ? 64 : 256, 64, err_rng);
  std::printf("int8 abs error: max %.3g mean %.3g (<= scale/2: %s)\n",
              err8.max_abs, err8.mean_abs, err8.bound_ok ? "yes" : "NO");
  std::printf("fp16 abs error: max %.3g mean %.3g\n\n", err16.max_abs,
              err16.mean_abs);

  // 3a. Hot-row gathers out of a compressed table vs the plain table.
  bool hot_bit_identical =
      HotGatherBitIdentical(smoke ? 512 : 4096, 64, ColdPrecision::kInt8) &&
      HotGatherBitIdentical(smoke ? 512 : 4096, 64, ColdPrecision::kFp16);

  // The dim-64 Terabyte workload: the int8 compression gate needs the
  // dim where the per-row metadata overhead is amortized (header comment).
  Dataset dataset = bench::MakeWorkloadDataset(WorkloadKind::kTerabyteDlrm,
                                               DatasetScale::kTiny, inputs);
  const DatasetSchema& schema = dataset.schema();
  Dataset::Split split = dataset.MakeSplit(0.15);
  const SystemSpec sys = MakePaperServer(gpus);
  const size_t dim_bytes = schema.embedding_dim * sizeof(float);

  auto make_cfg = [&](ColdPrecision p) {
    FaeConfig cfg;
    cfg.sample_rate = 0.25;
    cfg.large_table_bytes = bench::LargeTableCutoff(DatasetScale::kTiny);
    cfg.gpu_memory_budget = budget_bytes;
    cfg.num_threads = 2;
    cfg.cold_precision = p;
    return cfg;
  };

  // 2+5. run_math per mode: storage footprint and learning outcome.
  std::vector<CaseResult> cases;
  const ColdPrecision modes[] = {ColdPrecision::kFp32, ColdPrecision::kFp16,
                                 ColdPrecision::kInt8};
  for (ColdPrecision p : modes) {
    FaeConfig cfg = make_cfg(p);
    FaePipeline pipeline(cfg);
    auto plan = pipeline.Prepare(dataset, split.train);
    if (!plan.ok()) {
      std::fprintf(stderr, "FAE preprocessing failed: %s\n",
                   plan.status().ToString().c_str());
      return 2;
    }
    TrainOptions opt;
    opt.per_gpu_batch = batch;
    opt.epochs = 1;
    opt.eval_samples = 512;
    opt.cold_precision = p;
    auto model = MakeModel(schema, /*full_size=*/false, /*seed=*/5);
    Trainer trainer(model.get(), sys, opt);
    auto report = trainer.TrainFaeWithPlan(dataset, split, cfg, *plan);
    if (!report.ok()) {
      std::fprintf(stderr, "FAE training failed: %s\n",
                   report.status().ToString().c_str());
      return 2;
    }
    CaseResult c;
    c.precision = p;
    c.cold_rows = report->cold_rows;
    c.cold_store_bytes = report->cold_store_bytes;
    c.cold_fp32_bytes = report->cold_rows * dim_bytes;
    for (const EmbeddingTable& t : model->tables()) {
      c.resident_bytes += t.ResidentBytes();
    }
    c.effective_hot_budget = report->effective_hot_budget;
    c.reclaimed_bytes = report->cold_reclaimed_bytes;
    c.modeled_seconds = report->modeled_seconds;
    c.step_seconds = report->num_batches > 0
                         ? report->modeled_seconds /
                               static_cast<double>(report->num_batches)
                         : 0.0;
    c.final_test_acc = report->final_test_acc;
    c.rss_peak_kb = PeakRssKb();
    cases.push_back(c);
  }

  std::printf("%-6s %10s %12s %12s %12s %12s %9s\n", "mode", "cold-rows",
              "cold-fp32", "cold-store", "resident", "eff-budget", "test%");
  for (const CaseResult& c : cases) {
    std::printf("%-6s %10llu %12s %12s %12s %12s %8.2f%%\n",
                std::string(ColdPrecisionName(c.precision)).c_str(),
                static_cast<unsigned long long>(c.cold_rows),
                HumanBytes(c.cold_fp32_bytes).c_str(),
                HumanBytes(c.cold_store_bytes).c_str(),
                HumanBytes(c.resident_bytes).c_str(),
                HumanBytes(c.effective_hot_budget).c_str(),
                100.0 * c.final_test_acc);
  }

  const CaseResult& c16 = cases[1];
  const CaseResult& c8 = cases[2];
  const double fp16_ratio =
      c16.cold_store_bytes > 0 ? static_cast<double>(c16.cold_fp32_bytes) /
                                     static_cast<double>(c16.cold_store_bytes)
                               : 0.0;
  const double int8_ratio =
      c8.cold_store_bytes > 0 ? static_cast<double>(c8.cold_fp32_bytes) /
                                    static_cast<double>(c8.cold_store_bytes)
                              : 0.0;

  // 3b. Everything-hot plan: a cutoff above every table makes each table
  // all-hot, the compression step a no-op, and the three modes must then
  // produce bit-identical master tables — the hot path never sees the
  // quantizer.
  {
    FaeConfig cfg = make_cfg(ColdPrecision::kFp32);
    cfg.large_table_bytes = 1ULL << 40;
    cfg.gpu_memory_budget = 1ULL << 40;
    std::vector<std::vector<float>> baseline;
    for (ColdPrecision p : modes) {
      cfg.cold_precision = p;
      FaePipeline pipeline(cfg);
      auto plan = pipeline.Prepare(dataset, split.train);
      if (!plan.ok()) {
        std::fprintf(stderr, "all-hot preprocessing failed: %s\n",
                     plan.status().ToString().c_str());
        return 2;
      }
      TrainOptions opt;
      opt.per_gpu_batch = batch;
      opt.epochs = 1;
      opt.eval_samples = 256;
      opt.cold_precision = p;
      auto model = MakeModel(schema, /*full_size=*/false, /*seed=*/5);
      Trainer trainer(model.get(), sys, opt);
      auto report = trainer.TrainFaeWithPlan(dataset, split, cfg, *plan);
      if (!report.ok()) {
        std::fprintf(stderr, "all-hot training failed: %s\n",
                     report.status().ToString().c_str());
        return 2;
      }
      if (baseline.empty()) {
        for (const EmbeddingTable& t : model->tables())
          baseline.push_back(t.raw());
      } else {
        size_t i = 0;
        for (const EmbeddingTable& t : model->tables()) {
          hot_bit_identical &=
              t.raw().size() == baseline[i].size() &&
              std::memcmp(t.raw().data(), baseline[i].data(),
                          baseline[i].size() * sizeof(float)) == 0;
          ++i;
        }
      }
    }
  }
  std::printf("\nhot path bit-identical across modes: %s\n",
              hot_bit_identical ? "yes" : "NO");

  // 4. Cost-only speedup: the reclaimed bytes feed the calibrator, which
  // admits a finer threshold, which moves more accesses into hot chunks.
  double speedup = 0.0, hot_frac_fp32 = 0.0, hot_frac_int8 = 0.0;
  {
    Dataset plan_ds = bench::MakeWorkloadDataset(
        WorkloadKind::kTerabyteDlrm, DatasetScale::kTiny, plan_inputs);
    Dataset::Split plan_split = plan_ds.MakeSplit(0.1);
    double modeled[2] = {0.0, 0.0};
    const ColdPrecision pair[] = {ColdPrecision::kFp32, ColdPrecision::kInt8};
    for (int i = 0; i < 2; ++i) {
      FaeConfig cfg = make_cfg(pair[i]);
      FaePipeline pipeline(cfg);
      auto plan = pipeline.Prepare(plan_ds, plan_split.train);
      if (!plan.ok()) {
        std::fprintf(stderr, "speedup preprocessing failed: %s\n",
                     plan.status().ToString().c_str());
        return 2;
      }
      (i == 0 ? hot_frac_fp32 : hot_frac_int8) = plan->inputs.HotFraction();
      TrainOptions opt;
      opt.per_gpu_batch = batch;
      opt.epochs = epochs;
      opt.run_math = false;  // modeled wall is the measurement
      opt.cold_precision = pair[i];
      auto model = MakeModel(plan_ds.schema(), /*full_size=*/false, 5);
      Trainer trainer(model.get(), sys, opt);
      auto report = trainer.TrainFaeWithPlan(plan_ds, plan_split, cfg, *plan);
      if (!report.ok()) {
        std::fprintf(stderr, "speedup training failed: %s\n",
                     report.status().ToString().c_str());
        return 2;
      }
      modeled[i] = report->modeled_seconds;
    }
    speedup = modeled[1] > 0.0 ? modeled[0] / modeled[1] : 0.0;
    std::printf(
        "cost-only wall fp32 %s (hot %.1f%%) vs int8+feedback %s "
        "(hot %.1f%%)\n",
        HumanSeconds(modeled[0]).c_str(), 100.0 * hot_frac_fp32,
        HumanSeconds(modeled[1]).c_str(), 100.0 * hot_frac_int8);
  }

  std::printf(
      "\nint8 cold-store compression: %.2fx (gate: >= %.2fx)\n"
      "fp16 cold-store compression: %.2fx (gate: >= %.2fx)\n"
      "int8 budget-feedback speedup: %.2fx (gate: >= %.2fx)\n",
      int8_ratio, kInt8Gate, fp16_ratio, kFp16Gate, speedup, kSpeedupGate);

  const bool gate_ok = int8_ratio >= kInt8Gate && fp16_ratio >= kFp16Gate &&
                       speedup >= kSpeedupGate && err8.bound_ok &&
                       hot_bit_identical;
  const std::string out = args.GetString("out", "BENCH_quant.json");
  WriteJson(out, cases, err8, err16, int8_ratio, fp16_ratio, speedup,
            hot_frac_fp32, hot_frac_int8, hot_bit_identical, gate_ok);
  std::printf("wrote %s\n", out.c_str());

  if (!err8.bound_ok) {
    std::fprintf(stderr, "FAIL: int8 error above the scale/2 bound\n");
    return 1;
  }
  if (!hot_bit_identical) {
    std::fprintf(stderr, "FAIL: hot path not bit-identical across modes\n");
    return 1;
  }
  if (int8_ratio < kInt8Gate) {
    std::fprintf(stderr, "FAIL: int8 compression %.2fx < %.2fx gate\n",
                 int8_ratio, kInt8Gate);
    return 1;
  }
  if (fp16_ratio < kFp16Gate) {
    std::fprintf(stderr, "FAIL: fp16 compression %.2fx < %.2fx gate\n",
                 fp16_ratio, kFp16Gate);
    return 1;
  }
  if (speedup < kSpeedupGate) {
    std::fprintf(stderr, "FAIL: budget-feedback speedup %.2fx < %.2fx gate\n",
                 speedup, kSpeedupGate);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace fae

int main(int argc, char** argv) { return fae::Run(argc, argv); }
