// Extension (paper §IV-A3): the paper evaluates a single server ("the
// open-sourced DLRM and TBSM models do not support multi-server
// implementations. However, even in a multi-server scenario, we expect our
// insights to hold true"). This harness tests that expectation on the
// simulated cluster: N paper servers over a 100 GbE RDMA fabric — and it
// is the PR gate for --sharding (DESIGN.md §15): the statistical planner
// must beat whole-table LPT on the modeled wall once the hot slice spans
// nodes.
//
// Two parts:
//   1. Context table: baseline vs FAE across the paper workloads and node
//      counts (the original multi-server expectation). Workloads whose
//      preprocessing or training fails are *logged and skipped*, never
//      silently dropped.
//   2. Sharding sweep (the gate): replicate / lpt / statistical on a
//      high-skew Kaggle-like workload over {1, 2, 4, 8} nodes. Checks:
//        a. speedup: statistical >= 1.3x over LPT on the modeled wall at
//           4 nodes (kSpeedupGate);
//        b. balance: the statistical placement's per-device lookup-mass
//           imbalance <= 1.15 at every node count (kImbalanceGate);
//        c. determinism: phase-charge totals bit-identical across all
//           three modes at every node count (the placement is a cost
//           overlay, DESIGN.md §15), and with --losses a real-math triple
//           at 2 nodes must produce bit-identical test losses.
//      Any miss fails the binary (ctest's bench_multinode_smoke runs it
//      with --smoke).
//
// Usage:
//   ext_multinode [--out=BENCH_multinode.json] [--scale=tiny]
//                 [--inputs=60000] [--gpus=4] [--zipf=1.8]
//                 [--shard-inputs=12000] [--shard-batch=1024]
//                 [--budget-kb=1024] [--smoke] [--losses=1]
//
// Timing uses the simulator's modeled seconds (deterministic, so no
// reps); results are identical run to run.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/fae_pipeline.h"
#include "data/synthetic.h"
#include "engine/trainer.h"
#include "models/factory.h"
#include "util/string_util.h"

namespace fae {
namespace {

constexpr double kSpeedupGate = 1.3;     // statistical vs LPT, 4 nodes
constexpr double kImbalanceGate = 1.15;  // statistical, every node count
constexpr int kGateNodes = 4;

struct ContextRow {
  std::string workload;
  int nodes = 0;
  double baseline_seconds = 0.0;
  double fae_seconds = 0.0;
  double net_share = 0.0;
};

struct ShardCase {
  int nodes = 0;
  ShardingMode mode = ShardingMode::kReplicate;
  double modeled_seconds = 0.0;
  double phase_sum_seconds = 0.0;
  double sharding_saved_seconds = 0.0;
  double imbalance = 0.0;
  uint64_t replicated_rows = 0;
  uint64_t replicated_bytes = 0;
  uint64_t max_shard_bytes = 0;
};

void WriteJson(const std::string& path, size_t shard_inputs, double zipf,
               int gpus, double hot_fraction,
               const std::vector<ContextRow>& context,
               const std::vector<ShardCase>& cases, double speedup,
               double gate_imbalance, bool deterministic, bool losses_ok,
               bool losses_checked, bool gate_ok) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(2);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"suite\": \"ext_multinode\",\n");
  std::fprintf(f, "  \"shard_workload\": \"kaggle_dlrm_tiny\",\n");
  std::fprintf(f, "  \"shard_inputs\": %zu,\n", shard_inputs);
  std::fprintf(f, "  \"zipf\": %.3f,\n", zipf);
  std::fprintf(f, "  \"gpus_per_node\": %d,\n", gpus);
  std::fprintf(f, "  \"hot_input_fraction\": %.4f,\n", hot_fraction);
  std::fprintf(f, "  \"criterion_stat_vs_lpt_speedup\": %.3f,\n", speedup);
  std::fprintf(f, "  \"criterion_speedup_gate\": %.2f,\n", kSpeedupGate);
  std::fprintf(f, "  \"criterion_speedup_gate_nodes\": %d,\n", kGateNodes);
  std::fprintf(f, "  \"criterion_imbalance\": %.4f,\n", gate_imbalance);
  std::fprintf(f, "  \"criterion_imbalance_gate\": %.2f,\n", kImbalanceGate);
  std::fprintf(f, "  \"phase_sums_bit_identical_across_modes\": %s,\n",
               deterministic ? "true" : "false");
  std::fprintf(f, "  \"losses_bit_identical\": %s,\n",
               losses_checked ? (losses_ok ? "true" : "false") : "null");
  std::fprintf(f, "  \"criterion_ok\": %s,\n", gate_ok ? "true" : "false");
  std::fprintf(f, "  \"sharding_cases\": [\n");
  for (size_t i = 0; i < cases.size(); ++i) {
    const ShardCase& c = cases[i];
    std::fprintf(
        f,
        "    {\"nodes\": %d, \"mode\": \"%s\", \"modeled_seconds\": %.9f, "
        "\"phase_sum_seconds\": %.9f, \"sharding_saved_seconds\": %.9f, "
        "\"imbalance\": %.4f, \"replicated_rows\": %llu, "
        "\"replicated_bytes\": %llu, \"max_shard_bytes\": %llu}%s\n",
        c.nodes, std::string(ShardingModeName(c.mode)).c_str(),
        c.modeled_seconds, c.phase_sum_seconds, c.sharding_saved_seconds,
        c.imbalance, static_cast<unsigned long long>(c.replicated_rows),
        static_cast<unsigned long long>(c.replicated_bytes),
        static_cast<unsigned long long>(c.max_shard_bytes),
        i + 1 < cases.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"context\": [\n");
  for (size_t i = 0; i < context.size(); ++i) {
    const ContextRow& r = context[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"nodes\": %d, "
                 "\"baseline_seconds\": %.9f, \"fae_seconds\": %.9f, "
                 "\"baseline_network_share\": %.4f}%s\n",
                 r.workload.c_str(), r.nodes, r.baseline_seconds,
                 r.fae_seconds, r.net_share,
                 i + 1 < context.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

/// Part 1: the original multi-server expectation, kept for context. A
/// workload that fails to preprocess or train is reported to stderr and
/// skipped — the old harness `continue`d silently, which read as "all
/// workloads covered" when some were not.
std::vector<ContextRow> RunContextTable(DatasetScale scale, size_t inputs,
                                        int gpus) {
  std::vector<ContextRow> rows;
  std::printf("%d GPUs per node, weak scaling\n\n", gpus);
  std::printf("%-22s %6s %14s %14s %9s %16s\n", "workload", "nodes",
              "baseline", "fae", "speedup", "base net-share");

  for (WorkloadKind kind : bench::AllWorkloads()) {
    const std::string name(WorkloadName(kind));
    Dataset dataset = bench::MakeWorkloadDataset(kind, scale, inputs);
    Dataset::Split split = dataset.MakeSplit(0.1);
    FaeConfig cfg;
    cfg.sample_rate = 0.25;
    cfg.large_table_bytes = bench::LargeTableCutoff(scale);
    cfg.gpu_memory_budget =
        bench::HotBudget(scale, dataset.schema().embedding_dim);
    cfg.num_threads = 2;
    FaePipeline pipeline(cfg);
    auto plan = pipeline.Prepare(dataset, split.train);
    if (!plan.ok()) {
      std::fprintf(stderr, "skip %s: preprocessing failed: %s\n",
                   name.c_str(), plan.status().ToString().c_str());
      continue;
    }

    for (int nodes : {1, 2, 4}) {
      TrainOptions opt;
      opt.per_gpu_batch = kind == WorkloadKind::kTaobaoTbsm ? 256 : 1024;
      opt.epochs = 1;
      opt.run_math = false;

      SystemSpec sys = MakeMultiNodeCluster(nodes, gpus);
      sys.hot_embedding_budget = cfg.gpu_memory_budget;
      auto base_model = MakeModel(dataset.schema(), true, 5);
      Trainer base_trainer(base_model.get(), sys, opt);
      TrainReport base = base_trainer.TrainBaseline(dataset, split);
      auto fae_model = MakeModel(dataset.schema(), true, 5);
      Trainer fae_trainer(fae_model.get(), sys, opt);
      auto fae = fae_trainer.TrainFaeWithPlan(dataset, split, cfg, *plan);
      if (!fae.ok()) {
        std::fprintf(stderr,
                     "skip %s at %d node(s): FAE training failed: %s\n",
                     name.c_str(), nodes, fae.status().ToString().c_str());
        continue;
      }

      const double net_share =
          base.timeline.seconds(Phase::kNetwork) / base.modeled_seconds;
      std::printf("%-22s %6d %14s %14s %8.2fx %15.1f%%\n", name.c_str(),
                  nodes, HumanSeconds(base.modeled_seconds).c_str(),
                  HumanSeconds(fae->modeled_seconds).c_str(),
                  base.modeled_seconds / fae->modeled_seconds,
                  100 * net_share);
      rows.push_back({name, nodes, base.modeled_seconds,
                      fae->modeled_seconds, net_share});
    }
  }
  return rows;
}

int Run(int argc, char** argv) {
  bench::Args args(argc, argv);
  const bool smoke = args.GetBool("smoke", false);
  const DatasetScale scale =
      bench::ParseScale(args.GetString("scale", "tiny"));
  const size_t inputs = static_cast<size_t>(
      args.GetNonNegativeInt("inputs", smoke ? 8000 : 60000));
  const int gpus = static_cast<int>(args.GetPositiveInt("gpus", 4));
  const double zipf = args.GetDouble("zipf", 1.8);
  // The shard sweep needs enough inputs for several hot batches even at
  // world size 16 (4 nodes x 4 GPUs, global batch 16k) — fewer and the
  // speedup gate measures sync noise, not steady-state steps. The sweep is
  // cost-only and runs in ~1 s, so --smoke keeps the full size.
  const size_t shard_inputs = static_cast<size_t>(
      args.GetPositiveInt("shard-inputs", 12000));
  const size_t shard_batch =
      static_cast<size_t>(args.GetPositiveInt("shard-batch", 1024));
  const uint64_t budget_bytes =
      args.GetPositiveInt("budget-kb", 1024) * 1024ull;
  const bool check_losses = args.GetBool("losses", true);

  bench::PrintHeader(
      "Extension: multi-node scaling (N paper servers over 100GbE)");
  std::vector<ContextRow> context = RunContextTable(scale, inputs, gpus);

  // Part 2: the sharding sweep. High Zipf skew concentrates the access
  // mass the way the paper's workloads do (Fig 2) — exactly where
  // replicating the head and range-sharding the warm body by CDF mass
  // beats whole-table LPT bin packing.
  bench::PrintHeader(
      "Sharded hot-slice placement: replicate vs lpt vs statistical");
  std::printf("kaggle-like tiny, %zu inputs, zipf %.2f, batch %zu, "
              "%d GPUs/node\n\n",
              shard_inputs, zipf, shard_batch, gpus);

  DatasetSchema schema = MakeKaggleLikeSchema(DatasetScale::kTiny);
  SyntheticOptions gen_opt;
  gen_opt.seed = 42;
  gen_opt.zipf_exponent = zipf;
  Dataset dataset =
      SyntheticGenerator(schema, gen_opt).Generate(shard_inputs);
  Dataset::Split split = dataset.MakeSplit(0.1);

  FaeConfig cfg;
  cfg.sample_rate = 0.25;
  cfg.large_table_bytes = bench::LargeTableCutoff(DatasetScale::kTiny);
  cfg.gpu_memory_budget = budget_bytes;
  cfg.num_threads = 2;
  FaePipeline pipeline(cfg);
  auto plan = pipeline.Prepare(dataset, split.train);
  if (!plan.ok()) {
    std::fprintf(stderr, "FAE preprocessing failed: %s\n",
                 plan.status().ToString().c_str());
    return 2;
  }
  const double hot_fraction = plan->inputs.HotFraction();
  std::printf("hot input fraction: %.2f\n\n", hot_fraction);

  const std::vector<int> node_counts =
      smoke ? std::vector<int>{1, kGateNodes}
            : std::vector<int>{1, 2, 4, 8};
  const std::vector<ShardingMode> modes = {ShardingMode::kReplicate,
                                           ShardingMode::kLpt,
                                           ShardingMode::kStatistical};

  std::vector<ShardCase> cases;
  std::printf("%6s %-12s %14s %14s %11s %10s\n", "nodes", "mode", "modeled",
              "vs replicate", "imbalance", "max shard");
  for (int nodes : node_counts) {
    SystemSpec sys = MakeMultiNodeCluster(nodes, gpus);
    sys.hot_embedding_budget = budget_bytes;
    for (ShardingMode mode : modes) {
      TrainOptions opt;
      opt.per_gpu_batch = shard_batch;
      opt.epochs = 1;
      opt.run_math = false;
      opt.sharding = mode;
      auto model = MakeModel(schema, /*full_size=*/false, /*seed=*/5);
      Trainer trainer(model.get(), sys, opt);
      auto report = trainer.TrainFaeWithPlan(dataset, split, cfg, *plan);
      if (!report.ok()) {
        std::fprintf(stderr, "FAE training failed (%s, %d nodes): %s\n",
                     std::string(ShardingModeName(mode)).c_str(), nodes,
                     report.status().ToString().c_str());
        return 2;
      }
      cases.push_back({nodes, mode, report->modeled_seconds,
                       report->timeline.PhaseSumSeconds(),
                       report->sharding_saved_seconds,
                       report->sharding_imbalance,
                       report->sharding_replicated_rows,
                       report->sharding_replicated_bytes,
                       report->sharding_max_shard_bytes});
      const ShardCase& c = cases.back();
      std::printf("%6d %-12s %14s %+13.1fus %11.3f %10s\n", nodes,
                  std::string(ShardingModeName(mode)).c_str(),
                  HumanSeconds(c.modeled_seconds).c_str(),
                  1e6 * c.sharding_saved_seconds, c.imbalance,
                  HumanBytes(c.max_shard_bytes).c_str());
    }
  }

  // Determinism: within a node count, every mode charges the exact same
  // phase totals — the placement only moves time off the modeled wall.
  bool deterministic = true;
  for (size_t base = 0; base < cases.size(); base += modes.size()) {
    for (size_t m = 1; m < modes.size(); ++m) {
      deterministic &= cases[base + m].phase_sum_seconds ==
                       cases[base].phase_sum_seconds;
    }
  }

  // Real-math triple at 2 nodes: the placement must not perturb training
  // math at all — losses bit-identical across modes.
  bool losses_ok = true;
  if (check_losses) {
    double first_loss = 0.0;
    SystemSpec sys = MakeMultiNodeCluster(2, gpus);
    sys.hot_embedding_budget = budget_bytes;
    for (size_t m = 0; m < modes.size(); ++m) {
      TrainOptions opt;
      opt.per_gpu_batch = shard_batch;
      opt.epochs = 1;
      opt.run_math = true;
      opt.sharding = modes[m];
      auto model = MakeModel(schema, /*full_size=*/false, /*seed=*/5);
      Trainer trainer(model.get(), sys, opt);
      auto report = trainer.TrainFaeWithPlan(dataset, split, cfg, *plan);
      if (!report.ok()) {
        std::fprintf(stderr, "FAE math run failed (%s): %s\n",
                     std::string(ShardingModeName(modes[m])).c_str(),
                     report.status().ToString().c_str());
        return 2;
      }
      if (m == 0) {
        first_loss = report->final_test_loss;
      } else {
        losses_ok &= report->final_test_loss == first_loss;
      }
    }
    std::printf("\ntest losses bit-identical across modes (2 nodes): %s\n",
                losses_ok ? "yes" : "NO");
  }

  // Gates.
  auto find_case = [&](int nodes, ShardingMode mode) -> const ShardCase* {
    for (const ShardCase& c : cases) {
      if (c.nodes == nodes && c.mode == mode) return &c;
    }
    return nullptr;
  };
  const ShardCase* lpt = find_case(kGateNodes, ShardingMode::kLpt);
  const ShardCase* stat = find_case(kGateNodes, ShardingMode::kStatistical);
  const double speedup =
      (lpt != nullptr && stat != nullptr && stat->modeled_seconds > 0.0)
          ? lpt->modeled_seconds / stat->modeled_seconds
          : 0.0;
  double worst_imbalance = 0.0;
  for (const ShardCase& c : cases) {
    if (c.mode == ShardingMode::kStatistical) {
      worst_imbalance = std::max(worst_imbalance, c.imbalance);
    }
  }
  const bool gate_ok = speedup >= kSpeedupGate &&
                       worst_imbalance <= kImbalanceGate && deterministic &&
                       losses_ok;

  std::printf(
      "\nstatistical vs lpt at %d nodes: %.2fx (gate: >= %.2fx)\n"
      "statistical imbalance (worst):  %.3f (gate: <= %.2f)\n"
      "phase sums bit-identical across modes: %s\n",
      kGateNodes, speedup, kSpeedupGate, worst_imbalance, kImbalanceGate,
      deterministic ? "yes" : "NO");

  const std::string out = args.GetString("out", "BENCH_multinode.json");
  WriteJson(out, shard_inputs, zipf, gpus, hot_fraction, context, cases,
            speedup, worst_imbalance, deterministic, losses_ok,
            check_losses, gate_ok);
  std::printf("wrote %s\n", out.c_str());

  if (!deterministic) {
    std::fprintf(stderr, "FAIL: sharding modes disagree on phase charges\n");
    return 1;
  }
  if (!losses_ok) {
    std::fprintf(stderr, "FAIL: sharding modes disagree on test losses\n");
    return 1;
  }
  if (speedup < kSpeedupGate) {
    std::fprintf(stderr,
                 "FAIL: statistical vs lpt %.2fx < %.2fx gate at %d nodes\n",
                 speedup, kSpeedupGate, kGateNodes);
    return 1;
  }
  if (worst_imbalance > kImbalanceGate) {
    std::fprintf(stderr, "FAIL: statistical imbalance %.3f > %.2f gate\n",
                 worst_imbalance, kImbalanceGate);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace fae

int main(int argc, char** argv) { return fae::Run(argc, argv); }
