// Extension (paper §IV-A3): the paper evaluates a single server ("the
// open-sourced DLRM and TBSM models do not support multi-server
// implementations. However, even in a multi-server scenario, we expect our
// insights to hold true"). This harness tests that expectation on the
// simulated cluster: N paper servers over a 100 GbE RDMA fabric, with the
// baseline's embedding tables sharded parameter-server style across the
// per-node CPUs.
//
// Expected: FAE's advantage persists (and typically grows) with node
// count — the baseline ships pooled embeddings across the network every
// batch, while FAE's hot batches only pay the gradient all-reduce.

#include <cstdio>

#include "bench/bench_util.h"
#include "engine/trainer.h"
#include "models/factory.h"
#include "util/string_util.h"

namespace fae {
namespace {

void Run(const bench::Args& args) {
  const DatasetScale scale =
      bench::ParseScale(args.GetString("scale", "tiny"));
  const size_t inputs = args.GetInt("inputs", 60000);
  const int gpus = static_cast<int>(args.GetInt("gpus", 4));

  bench::PrintHeader(
      "Extension: multi-node scaling (N paper servers over 100GbE)");
  std::printf("%d GPUs per node, weak scaling\n\n", gpus);
  std::printf("%-22s %6s %14s %14s %9s %16s\n", "workload", "nodes",
              "baseline", "fae", "speedup", "base net-share");

  for (WorkloadKind kind : bench::AllWorkloads()) {
    Dataset dataset = bench::MakeWorkloadDataset(kind, scale, inputs);
    Dataset::Split split = dataset.MakeSplit(0.1);
    FaeConfig cfg;
    cfg.sample_rate = 0.25;
    cfg.large_table_bytes = bench::LargeTableCutoff(scale);
    cfg.gpu_memory_budget =
        bench::HotBudget(scale, dataset.schema().embedding_dim);
    cfg.num_threads = 2;
    FaePipeline pipeline(cfg);
    auto plan = pipeline.Prepare(dataset, split.train);
    if (!plan.ok()) continue;

    for (int nodes : {1, 2, 4}) {
      TrainOptions opt;
      opt.per_gpu_batch = kind == WorkloadKind::kTaobaoTbsm ? 256 : 1024;
      opt.epochs = 1;
      opt.run_math = false;

      SystemSpec sys = MakeMultiNodeCluster(nodes, gpus);
      sys.hot_embedding_budget = cfg.gpu_memory_budget;
      auto base_model = MakeModel(dataset.schema(), true, 5);
      Trainer base_trainer(base_model.get(), sys, opt);
      TrainReport base = base_trainer.TrainBaseline(dataset, split);
      auto fae_model = MakeModel(dataset.schema(), true, 5);
      Trainer fae_trainer(fae_model.get(), sys, opt);
      auto fae = fae_trainer.TrainFaeWithPlan(dataset, split, cfg, *plan);
      if (!fae.ok()) continue;

      const double net_share =
          base.timeline.seconds(Phase::kNetwork) / base.modeled_seconds;
      std::printf("%-22s %6d %14s %14s %8.2fx %15.1f%%\n",
                  std::string(WorkloadName(kind)).c_str(), nodes,
                  HumanSeconds(base.modeled_seconds).c_str(),
                  HumanSeconds(fae->modeled_seconds).c_str(),
                  base.modeled_seconds / fae->modeled_seconds,
                  100 * net_share);
    }
  }
  std::printf(
      "\nReading: the baseline's per-batch embedding exchange makes the\n"
      "network a first-order cost as nodes are added; FAE hot batches pay\n"
      "only the (hierarchical) gradient all-reduce, preserving its win —\n"
      "the paper's multi-server expectation, made concrete.\n");
}

}  // namespace
}  // namespace fae

int main(int argc, char** argv) {
  fae::bench::Args args(argc, argv);
  fae::Run(args);
  return 0;
}
