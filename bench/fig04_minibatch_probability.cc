// Reproduces Fig 4: the probability that a mini-batch drawn at random is
// entirely hot, as a function of the mini-batch size and the hot-input
// fraction — the motivation for packing *pure* hot/cold batches.
//
// Paper shape: even at 99% hot inputs, P(all-hot batch) collapses as the
// batch grows (0.99^1024 ~ 3e-5). Both the closed form p^B and a Monte
// Carlo estimate over a synthetic hot/cold labeling are printed.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "util/random.h"

namespace fae {
namespace {

void Run(const bench::Args& args) {
  const int trials = static_cast<int>(args.GetPositiveInt("trials", 20000));
  Xoshiro256 rng(args.GetNonNegativeInt("seed", 9));

  bench::PrintHeader(
      "Fig 4: probability of an all-hot mini-batch vs mini-batch size");
  std::printf("%-12s", "batch");
  const double fractions[] = {0.90, 0.95, 0.99, 0.999};
  for (double p : fractions) std::printf("  p=%.3f (exact / MC)", p);
  std::printf("\n");

  for (size_t batch : {16u, 64u, 256u, 1024u, 4096u}) {
    std::printf("%-12zu", batch);
    for (double p : fractions) {
      const double exact = std::pow(p, static_cast<double>(batch));
      int all_hot = 0;
      for (int t = 0; t < trials; ++t) {
        bool ok = true;
        for (size_t i = 0; i < batch; ++i) {
          if (!rng.NextBernoulli(p)) {
            ok = false;
            break;
          }
        }
        if (ok) ++all_hot;
      }
      std::printf("  %9.2e / %7.2e", exact,
                  static_cast<double>(all_hot) / trials);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper reference: the probability drops drastically with batch\n"
      "size, so FAE pre-packs batches that are entirely hot or cold.\n");
}

}  // namespace
}  // namespace fae

int main(int argc, char** argv) {
  fae::bench::Args args(argc, argv);
  fae::Run(args);
  return 0;
}
