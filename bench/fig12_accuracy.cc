// Reproduces Fig 12 + Table III: training/test accuracy of FAE-scheduled
// training vs the baseline, per workload. Training math is executed for
// real (the hardware model only affects reported time, not numerics).
//
// Paper shape: FAE reaches baseline accuracy on every dataset; curves
// overlap within noise (Table III deltas are within ~0.5%).

#include <cstdio>

#include "bench/bench_util.h"
#include "engine/trainer.h"
#include "models/factory.h"

namespace fae {
namespace {

void Run(const bench::Args& args) {
  const DatasetScale scale =
      bench::ParseScale(args.GetString("scale", "tiny"));
  const size_t inputs = args.GetNonNegativeInt("inputs", 12000);
  const size_t epochs = args.GetPositiveInt("epochs", 2);
  const bool full_model = args.GetBool("full_model", false);

  bench::PrintHeader("Fig 12 + Table III: accuracy, baseline vs FAE");

  std::printf("%-22s %10s %10s %10s %10s %9s %9s\n", "workload",
              "base-train", "fae-train", "base-test", "fae-test",
              "base-auc", "fae-auc");

  for (WorkloadKind kind : bench::AllWorkloads()) {
    Dataset dataset = bench::MakeWorkloadDataset(kind, scale, inputs);
    Dataset::Split split = dataset.MakeSplit(0.15);

    TrainOptions opt;
    opt.per_gpu_batch = 64;
    opt.epochs = epochs;
    opt.run_math = true;
    opt.eval_samples = 1024;
    opt.evals_per_epoch = 8;

    FaeConfig cfg;
    cfg.sample_rate = 0.2;
    cfg.large_table_bytes = bench::LargeTableCutoff(scale);
    cfg.gpu_memory_budget =
        bench::HotBudget(scale, dataset.schema().embedding_dim);
    cfg.num_threads = 2;

    auto base_model = MakeModel(dataset.schema(), full_model, 5);
    Trainer base_trainer(base_model.get(), MakePaperServer(1), opt);
    TrainReport base = base_trainer.TrainBaseline(dataset, split);

    auto fae_model = MakeModel(dataset.schema(), full_model, 5);
    Trainer fae_trainer(fae_model.get(), MakePaperServer(1), opt);
    auto fae = fae_trainer.TrainFae(dataset, split, cfg);
    if (!fae.ok()) {
      std::printf("%-22s FAE failed: %s\n",
                  std::string(WorkloadName(kind)).c_str(),
                  fae.status().ToString().c_str());
      continue;
    }

    std::printf("%-22s %9.2f%% %9.2f%% %9.2f%% %9.2f%% %9.3f %9.3f\n",
                std::string(WorkloadName(kind)).c_str(),
                100 * base.final_train_acc, 100 * fae->final_train_acc,
                100 * base.final_test_acc, 100 * fae->final_test_acc,
                base.final_test_auc, fae->final_test_auc);

    std::printf("  curves (iteration: baseline-test%% / fae-test%%):\n");
    const size_t n = std::min(base.curve.size(), fae->curve.size());
    for (size_t i = 0; i < n; ++i) {
      std::printf("    iter %5zu: %6.2f%% / %6.2f%%\n",
                  base.curve[i].iteration, 100 * base.curve[i].test_acc,
                  100 * fae->curve[i].test_acc);
    }
    std::printf(
        "  fae: hot-inputs %.1f%%, transitions %zu, final rate R(%.0f)\n",
        100 * fae->hot_fraction, fae->transitions, fae->final_rate);
  }
  std::printf(
      "\nPaper reference (Table III): FAE matches baseline accuracy within\n"
      "~0.5%% on all three datasets (e.g. Kaggle test 78.86%% for both).\n");
}

}  // namespace
}  // namespace fae

int main(int argc, char** argv) {
  fae::bench::Args args(argc, argv);
  fae::Run(args);
  return 0;
}
