// Stale-embedding update-skipping ablation (the PR gate for --stale-skip,
// DESIGN.md §16): runs the real engine — math ON, the skip decisions read
// measured per-row update magnitudes — sweeping the freeze threshold over
// zipf exponents, with the baseline driver in --stale-skip=all and the FAE
// driver in --stale-skip=cold for context.
//
// Three things are checked, and all fail the binary (ctest's
// bench_stale_skip_smoke runs it with --smoke):
//   1. Identity: --stale-threshold=0 is bit-identical to --stale-skip=off —
//      same learning curve, same modeled wall. The guard only multiplies
//      the threshold, so 0 is a fixed point and "feature compiled in but
//      inert" costs nothing.
//   2. Time-to-accuracy gate: among the swept thresholds whose final test
//      loss stays within 0.5% of the exact run, the best must cut the
//      modeled wall by >= 1.15x (same batches, comparable accuracy, less
//      time — modeled time-to-accuracy).
//   3. Loss band: the gate winner's loss delta itself (checked as part of
//      2 — a speedup bought with divergence does not count).
//
// The zipf sweep shows where skipping bites: heavier skew concentrates
// updates on few hot rows, so the long tail's EMAs settle fast and most
// row visits become skips.
//
// Usage:
//   abl_stale_skip [--out=BENCH_stale_skip.json] [--inputs=6000]
//                  [--batch=128] [--epochs=2] [--min-visits=2] [--smoke]
//
// Deterministic end to end (fixed seeds, one-writer-per-row EMA updates),
// so results are identical run to run and smoke differs only in size.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/fae_pipeline.h"
#include "data/synthetic.h"
#include "engine/trainer.h"
#include "models/factory.h"
#include "util/string_util.h"

namespace fae {
namespace {

struct CaseResult {
  std::string driver;  // baseline | fae
  std::string mode;    // off | all | cold
  double zipf = 0.0;
  double threshold = 0.0;
  double modeled_seconds = 0.0;
  double phase_sum_seconds = 0.0;
  double saved_seconds = 0.0;
  uint64_t skipped_rows = 0;
  uint64_t updated_rows = 0;
  double skip_fraction = 0.0;
  uint64_t reactivated_rows = 0;
  uint64_t guard_tightens = 0;
  uint64_t guard_widens = 0;
  double final_threshold = 0.0;
  double final_test_loss = 0.0;
  double final_test_acc = 0.0;
  std::vector<CurvePoint> curve;
};

struct Suite {
  size_t inputs = 6000;
  size_t batch = 128;
  size_t epochs = 2;
  size_t min_visits = 2;
  std::vector<double> zipfs = {1.05, 1.8};
  std::vector<double> thresholds = {0.05, 0.2, 0.5};
  double gate_zipf = 1.8;
};

constexpr double kWallGate = 1.15;
constexpr double kLossBand = 0.005;  // 0.5% relative

TrainOptions MakeOptions(const Suite& s, StaleSkipMode mode,
                         double threshold) {
  TrainOptions opt;
  opt.per_gpu_batch = s.batch;
  opt.epochs = s.epochs;
  opt.eval_samples = 512;
  opt.eval_batch = 256;
  opt.evals_per_epoch = 5;
  opt.num_threads = 2;
  opt.stale_skip = mode;
  if (mode != StaleSkipMode::kOff) {
    opt.stale_threshold = threshold;
    opt.stale_min_visits = s.min_visits;
  }
  return opt;
}

bool SameCurve(const std::vector<CurvePoint>& a,
               const std::vector<CurvePoint>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].iteration != b[i].iteration ||
        a[i].train_loss != b[i].train_loss ||
        a[i].train_acc != b[i].train_acc ||
        a[i].test_loss != b[i].test_loss ||
        a[i].test_acc != b[i].test_acc) {
      return false;
    }
  }
  return true;
}

void WriteJson(const std::string& path, const Suite& s,
               const std::vector<CaseResult>& results, bool identity_ok,
               double best_speedup, double best_loss_delta,
               double best_threshold, bool gate_ok) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(2);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"suite\": \"abl_stale_skip\",\n");
  std::fprintf(f, "  \"workload\": \"kaggle_dlrm_tiny\",\n");
  std::fprintf(f, "  \"inputs\": %zu,\n", s.inputs);
  std::fprintf(f, "  \"per_gpu_batch\": %zu,\n", s.batch);
  std::fprintf(f, "  \"epochs\": %zu,\n", s.epochs);
  std::fprintf(f, "  \"min_visits\": %zu,\n", s.min_visits);
  std::fprintf(f, "  \"gate_zipf\": %.3f,\n", s.gate_zipf);
  std::fprintf(f, "  \"criterion_zero_threshold_bit_identical\": %s,\n",
               identity_ok ? "true" : "false");
  std::fprintf(f, "  \"criterion_best_speedup\": %.3f,\n", best_speedup);
  std::fprintf(f, "  \"criterion_wall_gate\": %.2f,\n", kWallGate);
  std::fprintf(f, "  \"criterion_best_loss_delta\": %.5f,\n",
               best_loss_delta);
  std::fprintf(f, "  \"criterion_loss_band\": %.3f,\n", kLossBand);
  std::fprintf(f, "  \"criterion_best_threshold\": %.3f,\n", best_threshold);
  std::fprintf(f, "  \"criterion_ok\": %s,\n", gate_ok ? "true" : "false");
  std::fprintf(f, "  \"cases\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    std::fprintf(
        f,
        "    {\"driver\": \"%s\", \"mode\": \"%s\", \"zipf\": %.3f, "
        "\"threshold\": %.3f, \"modeled_seconds\": %.9f, "
        "\"phase_sum_seconds\": %.9f, \"saved_seconds\": %.9f, "
        "\"skipped_rows\": %llu, \"updated_rows\": %llu, "
        "\"skip_fraction\": %.4f, \"reactivated_rows\": %llu, "
        "\"guard_tightens\": %llu, \"guard_widens\": %llu, "
        "\"final_threshold\": %.6f, \"final_test_loss\": %.9f, "
        "\"final_test_acc\": %.6f}%s\n",
        r.driver.c_str(), r.mode.c_str(), r.zipf, r.threshold,
        r.modeled_seconds, r.phase_sum_seconds, r.saved_seconds,
        static_cast<unsigned long long>(r.skipped_rows),
        static_cast<unsigned long long>(r.updated_rows), r.skip_fraction,
        static_cast<unsigned long long>(r.reactivated_rows),
        static_cast<unsigned long long>(r.guard_tightens),
        static_cast<unsigned long long>(r.guard_widens), r.final_threshold,
        r.final_test_loss, r.final_test_acc,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

CaseResult Record(const std::string& driver, const std::string& mode,
                  double zipf, double threshold, const TrainReport& report) {
  CaseResult r;
  r.driver = driver;
  r.mode = mode;
  r.zipf = zipf;
  r.threshold = threshold;
  r.modeled_seconds = report.modeled_seconds;
  r.phase_sum_seconds = report.timeline.PhaseSumSeconds();
  r.saved_seconds = report.stale_skip_saved_seconds;
  r.skipped_rows = report.stale_skipped_rows;
  r.updated_rows = report.stale_updated_rows;
  const uint64_t visits = report.stale_skipped_rows + report.stale_updated_rows;
  r.skip_fraction =
      visits > 0 ? static_cast<double>(report.stale_skipped_rows) /
                       static_cast<double>(visits)
                 : 0.0;
  r.reactivated_rows = report.stale_reactivated_rows;
  r.guard_tightens = report.stale_guard_tightens;
  r.guard_widens = report.stale_guard_widens;
  r.final_threshold = report.stale_final_threshold;
  r.final_test_loss = report.final_test_loss;
  r.final_test_acc = report.final_test_acc;
  r.curve = report.curve;
  return r;
}

int Run(int argc, char** argv) {
  bench::Args args(argc, argv);
  Suite s;
  const bool smoke = args.GetBool("smoke", false);
  if (smoke) {
    s.inputs = 2400;
    s.zipfs = {1.8};
    s.thresholds = {0.2, 0.5};
  }
  s.inputs = static_cast<size_t>(
      args.GetNonNegativeInt("inputs", (long)s.inputs));
  s.batch = static_cast<size_t>(args.GetPositiveInt("batch", (long)s.batch));
  s.epochs =
      static_cast<size_t>(args.GetPositiveInt("epochs", (long)s.epochs));
  s.min_visits = static_cast<size_t>(
      args.GetPositiveInt("min-visits", (long)s.min_visits));

  bench::PrintHeader(
      "Ablation: stale-embedding update skipping (--stale-skip)");
  std::printf("inputs=%zu batch=%zu epochs=%zu min_visits=%zu (math ON)\n",
              s.inputs, s.batch, s.epochs, s.min_visits);

  const SystemSpec sys = MakePaperServer(1);
  std::vector<CaseResult> results;
  bool identity_ok = true;
  double best_speedup = 0.0;
  double best_loss_delta = 0.0;
  double best_threshold = 0.0;

  for (double zipf : s.zipfs) {
    DatasetSchema schema = MakeKaggleLikeSchema(DatasetScale::kTiny);
    SyntheticOptions gen_opt;
    gen_opt.seed = 42;
    gen_opt.zipf_exponent = zipf;
    Dataset dataset = SyntheticGenerator(schema, gen_opt).Generate(s.inputs);
    Dataset::Split split = dataset.MakeSplit(0.1);

    auto run_baseline = [&](StaleSkipMode mode, double threshold) {
      auto model = MakeModel(schema, /*full_size=*/false, /*seed=*/5);
      Trainer trainer(model.get(), sys, MakeOptions(s, mode, threshold));
      auto report = trainer.TrainBaselineResumable(dataset, split);
      if (!report.ok()) {
        std::fprintf(stderr, "baseline training failed: %s\n",
                     report.status().ToString().c_str());
        std::exit(2);
      }
      return *report;
    };

    const TrainReport off = run_baseline(StaleSkipMode::kOff, 0.0);
    results.push_back(Record("baseline", "off", zipf, 0.0, off));

    // Identity gate: threshold 0 must reproduce the exact run bit for bit.
    const TrainReport zero = run_baseline(StaleSkipMode::kAll, 0.0);
    CaseResult zero_case = Record("baseline", "all", zipf, 0.0, zero);
    const bool zero_identical =
        SameCurve(off.curve, zero.curve) &&
        off.modeled_seconds == zero.modeled_seconds &&
        zero.stale_skipped_rows == 0;
    identity_ok &= zero_identical;
    results.push_back(zero_case);

    std::printf(
        "\nzipf %.2f  (exact run: %s, test loss %.4f; threshold 0 "
        "bit-identical: %s)\n",
        zipf, HumanSeconds(off.modeled_seconds).c_str(), off.final_test_loss,
        zero_identical ? "yes" : "NO");
    std::printf("%-9s %-5s %9s %12s %12s %7s %9s %10s\n", "driver", "mode",
                "thresh", "modeled", "saved", "skip%", "loss", "guard-/+");

    for (double threshold : s.thresholds) {
      const TrainReport on = run_baseline(StaleSkipMode::kAll, threshold);
      CaseResult c = Record("baseline", "all", zipf, threshold, on);
      results.push_back(c);
      std::printf("%-9s %-5s %9.2f %12s %12s %6.1f%% %9.4f %5llu/%llu\n",
                  "baseline", "all", threshold,
                  HumanSeconds(c.modeled_seconds).c_str(),
                  HumanSeconds(c.saved_seconds).c_str(),
                  100.0 * c.skip_fraction, c.final_test_loss,
                  static_cast<unsigned long long>(c.guard_tightens),
                  static_cast<unsigned long long>(c.guard_widens));
      if (zipf == s.gate_zipf) {
        const double loss_delta =
            off.final_test_loss > 0.0
                ? std::abs(c.final_test_loss - off.final_test_loss) /
                      off.final_test_loss
                : 0.0;
        const double speedup = c.modeled_seconds > 0.0
                                   ? off.modeled_seconds / c.modeled_seconds
                                   : 0.0;
        if (loss_delta <= kLossBand && speedup > best_speedup) {
          best_speedup = speedup;
          best_loss_delta = loss_delta;
          best_threshold = threshold;
        }
      }
    }

    // FAE context: cold-only skipping rides the hot/cold schedule (the hot
    // set is pinned live, so only cold batches are credited).
    FaeConfig cfg;
    cfg.sample_rate = 0.25;
    cfg.large_table_bytes = bench::LargeTableCutoff(DatasetScale::kTiny);
    cfg.gpu_memory_budget = bench::HotBudget(DatasetScale::kTiny, 16);
    cfg.num_threads = 2;
    FaePipeline fae_pipeline(cfg);
    auto plan = fae_pipeline.Prepare(dataset, split.train);
    if (!plan.ok()) {
      std::fprintf(stderr, "FAE preprocessing failed: %s\n",
                   plan.status().ToString().c_str());
      return 2;
    }
    for (StaleSkipMode mode : {StaleSkipMode::kOff, StaleSkipMode::kCold}) {
      const double threshold =
          mode == StaleSkipMode::kOff ? 0.0 : s.thresholds.back();
      auto model = MakeModel(schema, /*full_size=*/false, /*seed=*/5);
      Trainer trainer(model.get(), sys, MakeOptions(s, mode, threshold));
      auto report = trainer.TrainFaeWithPlan(dataset, split, cfg, *plan);
      if (!report.ok()) {
        std::fprintf(stderr, "FAE training failed: %s\n",
                     report.status().ToString().c_str());
        return 2;
      }
      CaseResult c = Record("fae", std::string(StaleSkipModeName(mode)),
                            zipf, threshold, *report);
      results.push_back(c);
      std::printf("%-9s %-5s %9.2f %12s %12s %6.1f%% %9.4f %5llu/%llu\n",
                  "fae", c.mode.c_str(), threshold,
                  HumanSeconds(c.modeled_seconds).c_str(),
                  HumanSeconds(c.saved_seconds).c_str(),
                  100.0 * c.skip_fraction, c.final_test_loss,
                  static_cast<unsigned long long>(c.guard_tightens),
                  static_cast<unsigned long long>(c.guard_widens));
    }
  }

  const bool gate_ok =
      identity_ok && best_speedup >= kWallGate && best_loss_delta <= kLossBand;

  std::printf(
      "\nthreshold-0 bit-identical to off:    %s\n"
      "best in-band time-to-accuracy gain:  %.2fx at threshold %.2f "
      "(gate: >= %.2fx)\n"
      "its final-loss delta:                %.3f%% (band: <= %.1f%%)\n",
      identity_ok ? "yes" : "NO", best_speedup, best_threshold, kWallGate,
      100.0 * best_loss_delta, 100.0 * kLossBand);

  const std::string out = args.GetString("out", "BENCH_stale_skip.json");
  WriteJson(out, s, results, identity_ok, best_speedup, best_loss_delta,
            best_threshold, gate_ok);
  std::printf("wrote %s\n", out.c_str());

  if (!identity_ok) {
    std::fprintf(stderr, "FAIL: threshold 0 diverged from --stale-skip=off\n");
    return 1;
  }
  if (best_speedup < kWallGate) {
    std::fprintf(stderr,
                 "FAIL: best in-band speedup %.2fx < %.2fx gate (loss band "
                 "%.1f%%)\n",
                 best_speedup, kWallGate, 100.0 * kLossBand);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace fae

int main(int argc, char** argv) { return fae::Run(argc, argv); }
