// Ablation: every embedding placement in one table — the paper's hybrid
// baseline and FAE, plus the alternatives its related-work section argues
// against: NvOPT-style fp16-on-GPU, model-parallel table sharding, and a
// transparent per-GPU cache with FAE's exact hot set as its contents.
//
// Sweeping the hot-embedding budget L maps where FAE's batch
// reorganization beats the transparent cache (the cache pays a host round
// trip on nearly every batch; FAE pays full CPU cost on cold batches —
// the crossover moves with the hot-input fraction L induces).

#include <cstdio>

#include "bench/bench_util.h"
#include "engine/trainer.h"
#include "models/factory.h"
#include "util/string_util.h"

namespace fae {
namespace {

void Run(const bench::Args& args) {
  const DatasetScale scale =
      bench::ParseScale(args.GetString("scale", "tiny"));
  const size_t inputs = args.GetNonNegativeInt("inputs", 60000);
  const int gpus = static_cast<int>(args.GetPositiveInt("gpus", 4));
  const std::string workload = args.GetString("workload", "kaggle");
  const WorkloadKind kind = workload == "taobao"
                                ? WorkloadKind::kTaobaoTbsm
                                : (workload == "terabyte"
                                       ? WorkloadKind::kTerabyteDlrm
                                       : WorkloadKind::kKaggleDlrm);

  bench::PrintHeader("Ablation: embedding placements at varying budget L");
  Dataset dataset = bench::MakeWorkloadDataset(kind, scale, inputs);
  Dataset::Split split = dataset.MakeSplit(0.1);
  std::printf("%s, %d GPUs, %zu inputs\n\n",
              std::string(WorkloadName(kind)).c_str(), gpus,
              dataset.size());

  TrainOptions opt;
  opt.per_gpu_batch = kind == WorkloadKind::kTaobaoTbsm ? 256 : 1024;
  opt.epochs = 1;
  opt.run_math = false;

  SystemSpec sys = MakePaperServer(gpus);

  // Budget-independent rows first.
  auto base_model = MakeModel(dataset.schema(), true, 5);
  Trainer base_trainer(base_model.get(), sys, opt);
  const double base_s =
      base_trainer.TrainBaseline(dataset, split).modeled_seconds;
  std::printf("%-16s %14s\n", "baseline", HumanSeconds(base_s).c_str());

  {
    auto model = MakeModel(dataset.schema(), true, 5);
    Trainer trainer(model.get(), sys, opt);
    auto mp = trainer.TrainModelParallel(dataset, split);
    if (mp.ok()) {
      std::printf("%-16s %14s  (speedup %.2fx)\n", "model-parallel",
                  HumanSeconds(mp->modeled_seconds).c_str(),
                  base_s / mp->modeled_seconds);
    } else {
      std::printf("%-16s %s\n", "model-parallel",
                  mp.status().ToString().c_str());
    }
  }
  {
    auto model = MakeModel(dataset.schema(), true, 5);
    Trainer trainer(model.get(), sys, opt);
    TrainReport nv = trainer.TrainNvOpt(dataset, split);
    std::printf("%-16s %14s  (speedup %.2fx)\n", "nvopt-fp16",
                HumanSeconds(nv.modeled_seconds).c_str(),
                base_s / nv.modeled_seconds);
  }

  std::printf("\nbudget sweep (FAE vs transparent cache, same hot set):\n");
  std::printf("%-12s %12s %12s %12s %12s %12s\n", "L", "hot-inputs%",
              "fae", "fae-speedup", "cache", "cache-speedup");
  const uint64_t base_budget =
      bench::HotBudget(scale, dataset.schema().embedding_dim);
  for (double mult : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    FaeConfig cfg;
    cfg.sample_rate = 0.25;
    cfg.large_table_bytes = bench::LargeTableCutoff(scale);
    cfg.gpu_memory_budget =
        static_cast<uint64_t>(mult * static_cast<double>(base_budget));
    cfg.num_threads = 2;
    FaePipeline pipeline(cfg);
    auto plan = pipeline.Prepare(dataset, split.train);
    if (!plan.ok()) {
      std::printf("%-12s (no fitting threshold)\n",
                  HumanBytes(cfg.gpu_memory_budget).c_str());
      continue;
    }
    SystemSpec budget_sys = sys;
    budget_sys.hot_embedding_budget = cfg.gpu_memory_budget;

    auto fae_model = MakeModel(dataset.schema(), true, 5);
    Trainer fae_trainer(fae_model.get(), budget_sys, opt);
    auto fae = fae_trainer.TrainFaeWithPlan(dataset, split, cfg, *plan);
    auto cache_model = MakeModel(dataset.schema(), true, 5);
    Trainer cache_trainer(cache_model.get(), budget_sys, opt);
    TrainReport cache = cache_trainer.TrainGpuCache(dataset, split, *plan);
    if (!fae.ok()) continue;
    std::printf("%-12s %11.1f%% %12s %11.2fx %12s %11.2fx\n",
                HumanBytes(cfg.gpu_memory_budget).c_str(),
                100 * plan->inputs.HotFraction(),
                HumanSeconds(fae->modeled_seconds).c_str(),
                base_s / fae->modeled_seconds,
                HumanSeconds(cache.modeled_seconds).c_str(),
                base_s / cache.modeled_seconds);
  }
  std::printf(
      "\nReading: FAE's advantage grows with the hot-input fraction a larger\n"
      "L induces; below that it pays full CPU cost on cold batches while the\n"
      "cache (even with indirection + per-batch host round trips) serves\n"
      "most *lookups* regardless of batch composition. The idealized cache\n"
      "being this competitive is consistent with later systems (TorchRec UVM\n"
      "caching, HugeCTR embedding cache) adopting caching over input\n"
      "reorganization.\n");
}

}  // namespace
}  // namespace fae

int main(int argc, char** argv) {
  fae::bench::Args args(argc, argv);
  fae::Run(args);
  return 0;
}
