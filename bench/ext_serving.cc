// Extension: drift-robust online serving with continuous recalibration
// (DESIGN.md §12) — the robustness gate for the serve/ subsystem.
//
// Four scenarios over the same synthetic Kaggle-like workload:
//   1. drift-free reference     no drift, no recalibration
//   2. drift, stale plan        popularity drift, recalibration disabled
//   3. drift + recalibration    the SLO-triggered sampler re-run + hot-swap
//   4. drift + recal + faults   recal-stall, swap-crash and lookup-loss
//                               injected against scenario 3
//
// Gates (all fail the binary; ctest's bench_serving_smoke runs --smoke):
//   1. Recovery: with recalibration, the exit-time hit-rate EMA (the
//      recovered steady state) comes back to within 5 points of the
//      drift-free reference — and the run-average hit rate beats the
//      stale-plan run (the drift actually hurt, and recal actually helped).
//   2. Tail: recalibration keeps p99 within 2x the drift-free p99 (misses
//      pay a CPU + PCIe round trip, so an uncorrected stale set blows the
//      tail; a recalibrated one must not).
//   3. Fault-hardening: with recal-stall/swap-crash/lookup-loss injected,
//      serving never drops a lookup (hot + stale + fallback + miss sums to
//      every lookup issued), never crashes, degrades to honest stale-hit
//      accounting, and counts its recoveries in FaultStats.
//
// Usage:
//   ext_serving [--out=BENCH_serving.json] [--inputs=8000] [--batch=128]
//               [--drift=0.4] [--slo=0.9] [--swap=BENCH_serving_swap.faef]
//               [--smoke]
//
// Fully deterministic: time is the cost model's, traffic is a seeded
// synthetic replay, and faults fire on fixed batch indices — smoke and
// full runs differ only in input count.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/fae_pipeline.h"
#include "data/synthetic.h"
#include "models/factory.h"
#include "serve/serving_loop.h"
#include "util/string_util.h"

namespace fae {
namespace {

constexpr double kRecoveryGapGate = 0.05;  // points of hit rate vs drift-free
constexpr double kTailGate = 2.0;          // x the drift-free p99

struct Scenario {
  std::string name;
  ServeReport report;
};

ServeOptions MakeServeOptions(const bench::Args& args, size_t batch,
                              double slo) {
  ServeOptions opt;
  opt.batch_size = batch;
  opt.slo_hit_rate = slo;
  opt.ema_alpha = 0.2;
  opt.recal_window = 2048;
  opt.recal_cooldown = 8;
  opt.watchdog_deadline_seconds = 0.25;
  opt.max_recal_retries = 3;
  opt.retry_backoff_seconds = 0.01;
  opt.continuous_training = true;
  (void)args;
  return opt;
}

Dataset MakeTraffic(size_t inputs, double drift) {
  DatasetSchema schema = MakeKaggleLikeSchema(DatasetScale::kTiny);
  SyntheticOptions gen_opt;
  gen_opt.seed = 11;
  gen_opt.popularity_drift = drift;
  return SyntheticGenerator(schema, gen_opt).Generate(inputs);
}

ServeReport RunScenario(const Dataset& dataset, const FaeConfig& cfg,
                        const ServeOptions& opts, const FaePlan& plan) {
  auto model = MakeModel(dataset.schema(), /*full_size=*/false, /*seed=*/7);
  ServingLoop loop(model.get(), MakePaperServer(4), cfg, opts);
  auto report = loop.Serve(dataset, plan);
  if (!report.ok()) {
    std::fprintf(stderr, "serving failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(2);
  }
  return std::move(report).value();
}

void WriteJson(const std::string& path, size_t inputs, double drift,
               double slo, const std::vector<Scenario>& scenarios,
               double recovery_gap, double tail_ratio, bool recovered,
               bool tail_ok, bool fault_ok) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(2);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"suite\": \"ext_serving\",\n");
  std::fprintf(f, "  \"workload\": \"kaggle_dlrm_tiny\",\n");
  std::fprintf(f, "  \"inputs\": %zu,\n", inputs);
  std::fprintf(f, "  \"drift\": %.3f,\n", drift);
  std::fprintf(f, "  \"slo_hit_rate\": %.3f,\n", slo);
  std::fprintf(f, "  \"criterion_recovery_gap\": %.4f,\n", recovery_gap);
  std::fprintf(f, "  \"criterion_recovery_gate\": %.2f,\n", kRecoveryGapGate);
  std::fprintf(f, "  \"criterion_recovery_ok\": %s,\n",
               recovered ? "true" : "false");
  std::fprintf(f, "  \"criterion_p99_ratio\": %.3f,\n", tail_ratio);
  std::fprintf(f, "  \"criterion_p99_gate\": %.1f,\n", kTailGate);
  std::fprintf(f, "  \"criterion_p99_ok\": %s,\n", tail_ok ? "true" : "false");
  std::fprintf(f, "  \"criterion_faults_ok\": %s,\n",
               fault_ok ? "true" : "false");
  std::fprintf(f, "  \"scenarios\": [\n");
  for (size_t i = 0; i < scenarios.size(); ++i) {
    const ServeReport& r = scenarios[i].report;
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"batches\": %zu, \"lookups\": %llu, "
        "\"hit_rate\": %.4f, \"stale_hits\": %llu, "
        "\"master_fallbacks\": %llu, \"misses\": %llu, "
        "\"coverage_ema\": %.4f, \"p50_ns\": %llu, \"p99_ns\": %llu, "
        "\"recal_attempts\": %zu, \"deadline_misses\": %zu, "
        "\"recal_failures\": %zu, \"swaps\": %zu, \"swap_rejects\": %zu, "
        "\"degraded_batches\": %zu, \"recoveries\": %llu, "
        "\"modeled_seconds\": %.9f}%s\n",
        scenarios[i].name.c_str(), r.batches,
        static_cast<unsigned long long>(r.lookups), r.hit_rate,
        static_cast<unsigned long long>(r.stale_hits),
        static_cast<unsigned long long>(r.master_fallbacks),
        static_cast<unsigned long long>(r.misses), r.coverage_ema,
        static_cast<unsigned long long>(r.p50_latency_ns),
        static_cast<unsigned long long>(r.p99_latency_ns), r.recal_attempts,
        r.deadline_misses, r.recal_failures, r.swaps, r.swap_rejects,
        r.degraded_batches,
        static_cast<unsigned long long>(r.faults.recoveries),
        r.modeled_seconds, i + 1 < scenarios.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int Run(int argc, char** argv) {
  bench::Args args(argc, argv);
  const bool smoke = args.GetBool("smoke", false);
  // Deterministic cost-model time + seeded traffic: smoke and full runs
  // are the identical workload (as with abl_pipelined).
  (void)smoke;
  const size_t inputs = static_cast<size_t>(args.GetNonNegativeInt("inputs", 12000));
  const size_t batch = static_cast<size_t>(args.GetPositiveInt("batch", 128));
  // Drift 0.3 rotates ~a third of each table's popularity over the run —
  // past the acceptance floor of 0.2, slow enough per batch that a
  // sliding-window snapshot can track it (real logs drift over days, not
  // per request batch).
  const double drift = args.GetDouble("drift", 0.3);
  // The SLO doubles as the recovery target: the EMA oscillates between
  // this floor (trigger) and the post-swap peak, so holding service within
  // 5 points of drift-free requires demanding it.
  const double slo = args.GetDouble("slo", 0.92);
  const std::string swap_path =
      args.GetString("swap", "BENCH_serving_swap.faef");

  bench::PrintHeader(
      "Extension: online serving under popularity drift "
      "(recalibration + SLO guardrails + fault-hardened hot-swap)");
  std::printf("inputs=%zu batch=%zu drift=%.2f slo=%.2f\n\n", inputs, batch,
              drift, slo);

  FaeConfig cfg;
  cfg.sample_rate = 0.25;
  cfg.large_table_bytes = bench::LargeTableCutoff(DatasetScale::kTiny);
  // Tighter than HotBudget's calibration point: the hot set must be
  // selective enough that rotating popularity actually evicts coverage —
  // with an everything-fits budget, drift cannot hurt and the drift
  // detector has nothing to detect.
  cfg.gpu_memory_budget = 128ULL << 10;
  cfg.num_threads = 2;

  Dataset steady = MakeTraffic(inputs, 0.0);
  Dataset drifting = MakeTraffic(inputs, drift);

  // The offline plan each scenario starts from is computed over its own
  // dataset's *early* traffic only — the deployment reality: you calibrate
  // on yesterday's log, then the stream moves on.
  auto make_plan = [&](const Dataset& dataset) {
    std::vector<uint64_t> head(dataset.size() / 4);
    for (size_t i = 0; i < head.size(); ++i) head[i] = i;
    auto plan = FaePipeline(cfg).Prepare(dataset, head);
    if (!plan.ok()) {
      std::fprintf(stderr, "preprocessing failed: %s\n",
                   plan.status().ToString().c_str());
      std::exit(2);
    }
    return std::move(plan).value();
  };
  const FaePlan steady_plan = make_plan(steady);
  const FaePlan drift_plan = make_plan(drifting);

  std::vector<Scenario> scenarios;

  ServeOptions ref_opts = MakeServeOptions(args, batch, slo);
  scenarios.push_back(
      {"drift_free", RunScenario(steady, cfg, ref_opts, steady_plan)});

  ServeOptions stale_opts = MakeServeOptions(args, batch, slo);
  scenarios.push_back(
      {"drift_stale_plan",
       RunScenario(drifting, cfg, stale_opts, drift_plan)});

  ServeOptions recal_opts = MakeServeOptions(args, batch, slo);
  recal_opts.swap_path = swap_path;
  scenarios.push_back(
      {"drift_recal", RunScenario(drifting, cfg, recal_opts, drift_plan)});

  auto injector = FaultInjector::Parse(
      "recal-stall@2:9.0,swap-crash@3,lookup-loss@10x3");
  if (!injector.ok()) {
    std::fprintf(stderr, "bad fault plan: %s\n",
                 injector.status().ToString().c_str());
    return 2;
  }
  FaultInjector faults = std::move(injector).value();
  ServeOptions fault_opts = MakeServeOptions(args, batch, slo);
  fault_opts.swap_path = swap_path;
  fault_opts.fault_injector = &faults;
  scenarios.push_back(
      {"drift_recal_faults",
       RunScenario(drifting, cfg, fault_opts, drift_plan)});

  std::printf("%-19s %8s %8s %8s %10s %10s %6s %6s\n", "scenario", "hit%",
              "stale%", "miss%", "p50", "p99", "swaps", "degr");
  for (const Scenario& s : scenarios) {
    const ServeReport& r = s.report;
    const double lk = static_cast<double>(r.lookups);
    std::printf("%-19s %7.1f%% %7.1f%% %7.1f%% %9.1fus %9.1fus %6zu %6zu\n",
                s.name.c_str(), 100.0 * r.hit_rate,
                100.0 * r.stale_hits / lk, 100.0 * r.misses / lk,
                r.p50_latency_ns / 1e3, r.p99_latency_ns / 1e3, r.swaps,
                r.degraded_batches);
  }

  const ServeReport& ref = scenarios[0].report;
  const ServeReport& stale = scenarios[1].report;
  const ServeReport& recal = scenarios[2].report;
  const ServeReport& faulted = scenarios[3].report;

  // Recovery is judged on the exit-time hit-rate EMA — the recovered
  // steady state — because the run-average necessarily includes the
  // pre-detection decay the recalibration exists to stop. The run-average
  // must still strictly beat the stale plan's (drift hurt, recal helped).
  const double recovery_gap = ref.coverage_ema - recal.coverage_ema;
  const bool recovered = recovery_gap <= kRecoveryGapGate &&
                         recal.hit_rate > stale.hit_rate &&
                         recal.swaps > 0;
  const double tail_ratio = static_cast<double>(recal.p99_latency_ns) /
                            static_cast<double>(ref.p99_latency_ns);
  const bool tail_ok = tail_ratio <= kTailGate;

  const bool answered_all =
      faulted.hot_hits + faulted.stale_hits + faulted.master_fallbacks +
          faulted.misses ==
      faulted.lookups;
  const bool fault_ok = answered_all && !faulted.interrupted &&
                        faulted.faults.recoveries >= 2 &&
                        faulted.swap_rejects >= 1 &&
                        faulted.deadline_misses >= 1 &&
                        faulted.stale_hits > 0 &&
                        faulted.master_fallbacks > 0;

  std::printf(
      "\nrecovery gap vs drift-free: %.3f (gate: <= %.2f)\n"
      "p99 ratio vs drift-free:    %.2fx (gate: <= %.1fx)\n"
      "faulted run: answered all lookups %s, %llu recoveries, "
      "%zu swap rejects, %zu deadline misses\n",
      recovery_gap, kRecoveryGapGate, tail_ratio, kTailGate,
      answered_all ? "yes" : "NO",
      static_cast<unsigned long long>(faulted.faults.recoveries),
      faulted.swap_rejects, faulted.deadline_misses);

  const std::string out = args.GetString("out", "BENCH_serving.json");
  WriteJson(out, inputs, drift, slo, scenarios, recovery_gap, tail_ratio,
            recovered, tail_ok, fault_ok);
  std::printf("wrote %s\n", out.c_str());

  if (!recovered) {
    std::fprintf(stderr,
                 "FAIL: recalibration did not recover the hit rate "
                 "(gap %.3f, stale %.3f vs recal %.3f)\n",
                 recovery_gap, stale.hit_rate, recal.hit_rate);
    return 1;
  }
  if (!tail_ok) {
    std::fprintf(stderr, "FAIL: p99 ratio %.2fx exceeds %.1fx gate\n",
                 tail_ratio, kTailGate);
    return 1;
  }
  if (!fault_ok) {
    std::fprintf(stderr,
                 "FAIL: fault-hardening gate (answered=%d interrupted=%d "
                 "recoveries=%llu rejects=%zu misses=%zu)\n",
                 answered_all, faulted.interrupted,
                 static_cast<unsigned long long>(faulted.faults.recoveries),
                 faulted.swap_rejects, faulted.deadline_misses);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace fae

int main(int argc, char** argv) { return fae::Run(argc, argv); }
