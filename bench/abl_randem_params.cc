// Ablation: the Rand-Em Box's sample count n and chunk length m. The
// paper fixes n = 35 ("CLT considers the sample size to be large" at
// n >= 30) and m = 1024 ("precision of 1/1024 of the table size"). This
// sweep quantifies the trade-off those choices sit on: estimation error
// and one-sided CI coverage vs entries scanned.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/rand_em_box.h"
#include "stats/zipf.h"
#include "util/random.h"

namespace fae {
namespace {

void Run(const bench::Args& args) {
  const uint64_t rows = args.GetPositiveInt("rows", 500000);
  const uint64_t accesses = args.GetPositiveInt("accesses", 3000000);
  const uint64_t h_zt = args.GetPositiveInt("h", 10);
  const int trials = static_cast<int>(args.GetPositiveInt("trials", 40));

  bench::PrintHeader("Ablation: Rand-Em Box sample count n and chunk size m");

  // Scattered Zipf access counts (the deployment regime; see
  // tests/core/rand_em_box_test.cc).
  Xoshiro256 rng(5);
  ZipfSampler zipf(rows, 1.1);
  std::vector<uint64_t> counts(rows, 0);
  std::vector<uint64_t> perm = RandomPermutation(rows, rng);
  for (uint64_t i = 0; i < accesses; ++i) counts[perm[zipf.Sample(rng)]]++;
  const double exact =
      static_cast<double>(RandEmBox::ExactCount(counts, h_zt));
  std::printf("table: %llu rows, exact hot count at H_zt=%llu: %.0f\n\n",
              static_cast<unsigned long long>(rows),
              static_cast<unsigned long long>(h_zt), exact);
  std::printf("%-6s %-8s %10s %12s %12s %10s\n", "n", "m", "scanned",
              "mean-err%", "CI-cover%", "scan%");

  for (size_t n : {10u, 20u, 35u, 70u}) {
    for (size_t m : {256u, 1024u, 4096u}) {
      double err_sum = 0.0;
      int covered = 0;
      uint64_t scanned = 0;
      for (int trial = 0; trial < trials; ++trial) {
        RandEmBox box(n, m, 0.999, 100 + trial);
        RandEmBox::Estimate est = box.EstimateTable(counts, h_zt);
        err_sum += std::fabs(est.mean_hot_entries - exact) / exact;
        if (est.upper_hot_entries >= exact) ++covered;
        scanned = est.scanned_entries;
      }
      std::printf("%-6zu %-8zu %10llu %11.2f%% %11.0f%% %9.2f%%\n", n, m,
                  static_cast<unsigned long long>(scanned),
                  100.0 * err_sum / trials,
                  100.0 * covered / trials,
                  100.0 * static_cast<double>(scanned) /
                      static_cast<double>(rows));
    }
  }
  std::printf(
      "\nReading: estimation error shrinks ~1/sqrt(n*m); the paper's n=35,\n"
      "m=1024 reaches ~2%% mean error at ~7%% of the table scanned, with the\n"
      "one-sided 99.9%% CI covering the truth in every trial. Larger n*m\n"
      "buys little accuracy for a lot more scanning.\n");
}

}  // namespace
}  // namespace fae

int main(int argc, char** argv) {
  fae::bench::Args args(argc, argv);
  fae::Run(args);
  return 0;
}
