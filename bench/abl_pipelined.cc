// Pipelined-trainer ablation (the PR gate for --pipeline, DESIGN.md §11):
// runs the real engine in every pipeline mode — off (serial), prefetch
// (double-buffered input staging), overlap (staging + hot/cold phase
// overlap) — for both the baseline and the FAE trainer, on a skewed
// workload where most inputs are hot.
//
// Two things are checked, and both fail the binary (ctest's
// bench_pipelined_smoke runs it with --smoke):
//   1. Determinism: phase-charge totals are bit-identical across modes —
//      the pipeline hides time, it never changes what work is charged
//      (the math-level bit-exactness is pinned separately by
//      PipelineDeterminismTest).
//   2. The gate: FAE in overlap mode must beat serial FAE by >= 1.3x on
//      the modeled wall (epoch time), i.e. the overlap machinery must hide
//      a real fraction of the schedule, not round to zero.
//
// The workload leans hotter than the paper's default (zipf 1.8, generous
// hot budget) because overlap's ceiling is min(cold time, hot time) per
// adjacent chunk pair: a hot-majority schedule with the hot chunks' GPU
// steps ~3x faster than cold CPU steps is where pipelining pays, and is
// exactly the regime the paper targets (§II-A skew).
//
// Usage:
//   abl_pipelined [--out=BENCH_pipelined.json] [--inputs=8000]
//                 [--batch=256] [--epochs=2] [--gpus=4] [--zipf=1.8]
//                 [--budget-kb=1024] [--depth=2] [--smoke]
//
// Timing uses the simulator's modeled seconds (deterministic, so no reps),
// with --cost-only math skipped; results are identical run to run.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/fae_pipeline.h"
#include "data/synthetic.h"
#include "engine/trainer.h"
#include "models/factory.h"
#include "util/string_util.h"

namespace fae {
namespace {

struct ModeResult {
  std::string driver;  // baseline | fae
  PipelineMode mode = PipelineMode::kOff;
  double modeled_seconds = 0.0;
  double phase_sum_seconds = 0.0;
  double prep_seconds = 0.0;
  double overlap_saved_seconds = 0.0;
  double overlap_fraction = 0.0;
};

struct Suite {
  size_t inputs = 8000;
  size_t batch = 256;
  size_t epochs = 2;
  int gpus = 4;
  double zipf = 1.8;
  uint64_t budget_bytes = 1024ULL << 10;
  size_t depth = 2;
};

constexpr double kGateSpeedup = 1.3;

TrainOptions MakeOptions(const Suite& s, PipelineMode mode) {
  TrainOptions opt;
  opt.per_gpu_batch = s.batch;
  opt.epochs = s.epochs;
  opt.run_math = false;  // cost-only: the modeled wall is the measurement
  opt.pipeline = mode;
  opt.pipeline_depth = s.depth;
  return opt;
}

void WriteJson(const std::string& path, const Suite& s, double hot_fraction,
               const std::vector<ModeResult>& results, double fae_speedup,
               double baseline_speedup, bool deterministic, bool gate_ok) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(2);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"suite\": \"abl_pipelined\",\n");
  std::fprintf(f, "  \"workload\": \"kaggle_dlrm_tiny\",\n");
  std::fprintf(f, "  \"inputs\": %zu,\n", s.inputs);
  std::fprintf(f, "  \"per_gpu_batch\": %zu,\n", s.batch);
  std::fprintf(f, "  \"epochs\": %zu,\n", s.epochs);
  std::fprintf(f, "  \"gpus\": %d,\n", s.gpus);
  std::fprintf(f, "  \"zipf\": %.3f,\n", s.zipf);
  std::fprintf(f, "  \"hot_budget_bytes\": %llu,\n",
               static_cast<unsigned long long>(s.budget_bytes));
  std::fprintf(f, "  \"pipeline_depth\": %zu,\n", s.depth);
  std::fprintf(f, "  \"hot_input_fraction\": %.4f,\n", hot_fraction);
  std::fprintf(f, "  \"phase_sums_bit_identical_across_modes\": %s,\n",
               deterministic ? "true" : "false");
  std::fprintf(f, "  \"criterion_fae_overlap_speedup\": %.3f,\n",
               fae_speedup);
  std::fprintf(f, "  \"criterion_gate\": %.2f,\n", kGateSpeedup);
  std::fprintf(f, "  \"criterion_ok\": %s,\n", gate_ok ? "true" : "false");
  std::fprintf(f, "  \"baseline_overlap_speedup\": %.3f,\n",
               baseline_speedup);
  std::fprintf(f, "  \"modes\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ModeResult& r = results[i];
    std::fprintf(
        f,
        "    {\"driver\": \"%s\", \"pipeline\": \"%s\", "
        "\"modeled_seconds\": %.9f, \"phase_sum_seconds\": %.9f, "
        "\"prep_seconds\": %.9f, \"overlap_saved_seconds\": %.9f, "
        "\"overlap_fraction\": %.4f}%s\n",
        r.driver.c_str(), std::string(PipelineModeName(r.mode)).c_str(),
        r.modeled_seconds, r.phase_sum_seconds, r.prep_seconds,
        r.overlap_saved_seconds, r.overlap_fraction,
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int Run(int argc, char** argv) {
  bench::Args args(argc, argv);
  Suite s;
  const bool smoke = args.GetBool("smoke", false);
  s.inputs = static_cast<size_t>(args.GetNonNegativeInt("inputs", (long)s.inputs));
  s.batch = static_cast<size_t>(args.GetPositiveInt("batch", (long)s.batch));
  s.epochs = static_cast<size_t>(args.GetPositiveInt("epochs", (long)s.epochs));
  s.gpus = static_cast<int>(args.GetPositiveInt("gpus", s.gpus));
  s.zipf = args.GetDouble("zipf", s.zipf);
  s.budget_bytes = args.GetPositiveInt("budget-kb", 1024) * 1024ull;
  s.depth = static_cast<size_t>(args.GetPositiveInt("depth", (long)s.depth));

  bench::PrintHeader(
      "Ablation: pipelined trainer (--pipeline) vs serial execution");
  std::printf("inputs=%zu batch=%zu epochs=%zu gpus=%d zipf=%.2f depth=%zu\n",
              s.inputs, s.batch, s.epochs, s.gpus, s.zipf, s.depth);

  DatasetSchema schema = MakeKaggleLikeSchema(DatasetScale::kTiny);
  SyntheticOptions gen_opt;
  gen_opt.seed = 42;
  gen_opt.zipf_exponent = s.zipf;
  Dataset dataset = SyntheticGenerator(schema, gen_opt).Generate(s.inputs);
  Dataset::Split split = dataset.MakeSplit(0.1);

  FaeConfig cfg;
  cfg.sample_rate = 0.25;
  cfg.large_table_bytes = bench::LargeTableCutoff(DatasetScale::kTiny);
  cfg.gpu_memory_budget = s.budget_bytes;
  cfg.num_threads = 2;
  FaePipeline pipeline(cfg);
  auto plan = pipeline.Prepare(dataset, split.train);
  if (!plan.ok()) {
    std::fprintf(stderr, "FAE preprocessing failed: %s\n",
                 plan.status().ToString().c_str());
    return 2;
  }
  const double hot_fraction = plan->inputs.HotFraction();
  std::printf("hot input fraction: %.2f\n\n", hot_fraction);

  const SystemSpec sys = MakePaperServer(s.gpus);
  const std::vector<PipelineMode> modes = {
      PipelineMode::kOff, PipelineMode::kPrefetch, PipelineMode::kOverlap};

  std::vector<ModeResult> results;
  auto record = [&](const std::string& driver, PipelineMode mode,
                    const TrainReport& report) {
    results.push_back({driver, mode, report.modeled_seconds,
                       report.timeline.PhaseSumSeconds(),
                       report.prep_seconds, report.overlap_saved_seconds,
                       report.overlap_fraction});
  };

  for (PipelineMode mode : modes) {
    auto model = MakeModel(schema, /*full_size=*/false, /*seed=*/5);
    Trainer trainer(model.get(), sys, MakeOptions(s, mode));
    record("baseline", mode, trainer.TrainBaseline(dataset, split));
  }
  for (PipelineMode mode : modes) {
    auto model = MakeModel(schema, /*full_size=*/false, /*seed=*/5);
    Trainer trainer(model.get(), sys, MakeOptions(s, mode));
    auto report = trainer.TrainFaeWithPlan(dataset, split, cfg, *plan);
    if (!report.ok()) {
      std::fprintf(stderr, "FAE training failed: %s\n",
                   report.status().ToString().c_str());
      return 2;
    }
    record("fae", mode, *report);
  }

  std::printf("%-9s %-9s %12s %12s %12s %9s\n", "driver", "pipeline",
              "modeled", "prep", "hidden", "overlap%");
  for (const ModeResult& r : results) {
    std::printf("%-9s %-9s %12s %12s %12s %8.1f%%\n", r.driver.c_str(),
                std::string(PipelineModeName(r.mode)).c_str(),
                HumanSeconds(r.modeled_seconds).c_str(),
                HumanSeconds(r.prep_seconds).c_str(),
                HumanSeconds(r.overlap_saved_seconds).c_str(),
                100.0 * r.overlap_fraction);
  }

  // Determinism: within a driver, every mode charges the exact same phase
  // totals — overlap only moves time off the modeled wall.
  bool deterministic = true;
  for (size_t d = 0; d < 2; ++d) {
    const size_t base = d * modes.size();
    for (size_t m = 1; m < modes.size(); ++m) {
      deterministic &= results[base + m].phase_sum_seconds ==
                       results[base].phase_sum_seconds;
      deterministic &=
          results[base + m].prep_seconds == results[base].prep_seconds;
    }
  }

  const double baseline_speedup =
      results[0].modeled_seconds / results[2].modeled_seconds;
  const double fae_speedup =
      results[3].modeled_seconds / results[5].modeled_seconds;
  const bool gate_ok = fae_speedup >= kGateSpeedup;

  std::printf(
      "\nbaseline overlap speedup: %.2fx (informational; the synchronous\n"
      "baseline is CPU-bound, so intra-step overlap hides little)\n"
      "fae overlap speedup:      %.2fx (gate: >= %.2fx)\n"
      "phase sums bit-identical across modes: %s\n",
      baseline_speedup, fae_speedup, kGateSpeedup,
      deterministic ? "yes" : "NO");

  const std::string out = args.GetString("out", "BENCH_pipelined.json");
  WriteJson(out, s, hot_fraction, results, fae_speedup, baseline_speedup,
            deterministic, gate_ok);
  std::printf("wrote %s\n", out.c_str());

  if (!deterministic) {
    std::fprintf(stderr,
                 "FAIL: pipeline modes disagree on phase charges\n");
    return 1;
  }
  if (!gate_ok) {
    std::fprintf(stderr, "FAIL: fae overlap speedup %.2fx < %.2fx gate\n",
                 fae_speedup, kGateSpeedup);
    return 1;
  }
  (void)smoke;  // same deterministic workload either way; kept for symmetry
  return 0;
}

}  // namespace
}  // namespace fae

int main(int argc, char** argv) { return fae::Run(argc, argv); }
