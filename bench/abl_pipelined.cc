// Ablation (beyond the paper): how much of FAE's speedup survives against
// a *pipelined* hybrid baseline that overlaps the CPU's embedding work
// with the GPUs' dense work (software prefetching) — the strongest
// baseline a reviewer would ask for, since the paper's baseline is fully
// synchronous.
//
// Expected: overlap hides the smaller of the two paths, but the CPU path
// (embedding gathers + the sparse optimizer) stays on the critical path
// for embedding-heavy workloads, so FAE keeps a meaningful win.

#include <cstdio>

#include "bench/bench_util.h"
#include "engine/trainer.h"
#include "models/factory.h"
#include "util/string_util.h"

namespace fae {
namespace {

void Run(const bench::Args& args) {
  const DatasetScale scale =
      bench::ParseScale(args.GetString("scale", "tiny"));
  const size_t inputs = args.GetInt("inputs", 60000);
  const int gpus = static_cast<int>(args.GetInt("gpus", 4));

  bench::PrintHeader("Ablation: FAE vs a pipelined (overlapping) baseline");
  std::printf("%d GPUs\n\n", gpus);
  std::printf("%-22s %12s %12s %12s %10s %10s\n", "workload", "serial",
              "pipelined", "fae", "vs-serial", "vs-piped");

  for (WorkloadKind kind : bench::AllWorkloads()) {
    Dataset dataset = bench::MakeWorkloadDataset(kind, scale, inputs);
    Dataset::Split split = dataset.MakeSplit(0.1);
    FaeConfig cfg;
    cfg.sample_rate = 0.25;
    cfg.large_table_bytes = bench::LargeTableCutoff(scale);
    cfg.gpu_memory_budget =
        bench::HotBudget(scale, dataset.schema().embedding_dim);
    cfg.num_threads = 2;
    FaePipeline pipeline(cfg);
    auto plan = pipeline.Prepare(dataset, split.train);
    if (!plan.ok()) continue;

    TrainOptions opt;
    opt.per_gpu_batch = kind == WorkloadKind::kTaobaoTbsm ? 256 : 1024;
    opt.epochs = 1;
    opt.run_math = false;

    SystemSpec sys = MakePaperServer(gpus);
    sys.hot_embedding_budget = cfg.gpu_memory_budget;

    auto serial_model = MakeModel(dataset.schema(), true, 5);
    Trainer serial_trainer(serial_model.get(), sys, opt);
    TrainReport serial = serial_trainer.TrainBaseline(dataset, split);

    TrainOptions piped_opt = opt;
    piped_opt.pipelined_baseline = true;
    auto piped_model = MakeModel(dataset.schema(), true, 5);
    Trainer piped_trainer(piped_model.get(), sys, piped_opt);
    TrainReport piped = piped_trainer.TrainBaseline(dataset, split);

    // FAE compared against the pipelined world: its own cold batches
    // pipeline too.
    auto fae_model = MakeModel(dataset.schema(), true, 5);
    Trainer fae_trainer(fae_model.get(), sys, piped_opt);
    auto fae = fae_trainer.TrainFaeWithPlan(dataset, split, cfg, *plan);
    if (!fae.ok()) continue;

    std::printf("%-22s %12s %12s %12s %9.2fx %9.2fx\n",
                std::string(WorkloadName(kind)).c_str(),
                HumanSeconds(serial.modeled_seconds).c_str(),
                HumanSeconds(piped.modeled_seconds).c_str(),
                HumanSeconds(fae->modeled_seconds).c_str(),
                serial.modeled_seconds / fae->modeled_seconds,
                piped.modeled_seconds / fae->modeled_seconds);
  }
  std::printf(
      "\nReading: prefetching hides the GPU path under the CPU path (or\n"
      "vice versa) but cannot hide the CPU sparse optimizer or the\n"
      "transfers; FAE removes those for hot batches, so a meaningful win\n"
      "remains against even the overlapped baseline.\n");
}

}  // namespace
}  // namespace fae

int main(int argc, char** argv) {
  fae::bench::Args args(argc, argv);
  fae::Run(args);
  return 0;
}
