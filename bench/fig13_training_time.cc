// Reproduces Fig 13 + Table IV: modeled training time and speedup of FAE
// vs the hybrid baseline for 1, 2, and 4 GPUs (weak scaling), per
// workload. Cost-only mode: numerics are skipped, so only the hardware
// model determines the output.
//
// Paper shape: FAE reduces training time ~54-58% on average (2.34x mean
// speedup); 4 GPUs benefit most on the large datasets, while small
// datasets (Taobao) can regress slightly from 2 to 4 GPUs.

#include <cstdio>

#include "bench/bench_util.h"
#include "engine/trainer.h"
#include "models/factory.h"
#include "util/string_util.h"

namespace fae {
namespace {

void Run(const bench::Args& args) {
  const DatasetScale scale =
      bench::ParseScale(args.GetString("scale", "tiny"));
  // Default to inputs >> table rows, the regime of the paper's datasets
  // (45M-80M inputs vs <=10M-row tables).
  const size_t inputs = args.GetNonNegativeInt("inputs", 60000);
  const size_t epochs = args.GetPositiveInt("epochs", 1);

  bench::PrintHeader(
      "Fig 13 + Table IV: training time, baseline vs FAE (1/2/4 GPUs)");
  std::printf("%-22s %5s %14s %14s %9s\n", "workload", "gpus", "baseline",
              "fae", "speedup");

  double speedup_sum = 0.0;
  int speedup_count = 0;
  for (WorkloadKind kind : bench::AllWorkloads()) {
    Dataset dataset = bench::MakeWorkloadDataset(kind, scale, inputs);
    Dataset::Split split = dataset.MakeSplit(0.1);
    // Paper batch sizes: 1K for Criteo, 256 for Taobao (per GPU).
    const size_t per_gpu_batch =
        kind == WorkloadKind::kTaobaoTbsm ? 256 : 1024;

    FaeConfig cfg;
    cfg.sample_rate = 0.25;
    cfg.large_table_bytes = bench::LargeTableCutoff(scale);
    cfg.gpu_memory_budget =
        bench::HotBudget(scale, dataset.schema().embedding_dim);
    cfg.num_threads = 2;
    FaePipeline pipeline(cfg);
    auto plan = pipeline.Prepare(dataset, split.train);
    if (!plan.ok()) {
      std::printf("%-22s plan failed: %s\n",
                  std::string(WorkloadName(kind)).c_str(),
                  plan.status().ToString().c_str());
      continue;
    }

    for (int gpus : {1, 2, 4}) {
      TrainOptions opt;
      opt.per_gpu_batch = per_gpu_batch;
      opt.epochs = epochs;
      opt.run_math = false;

      auto base_model = MakeModel(dataset.schema(), /*full_size=*/true, 5);
      SystemSpec sys = MakePaperServer(gpus);
      sys.hot_embedding_budget = cfg.gpu_memory_budget;
      Trainer base_trainer(base_model.get(), sys, opt);
      TrainReport base = base_trainer.TrainBaseline(dataset, split);

      auto fae_model = MakeModel(dataset.schema(), /*full_size=*/true, 5);
      Trainer fae_trainer(fae_model.get(), sys, opt);
      auto fae = fae_trainer.TrainFaeWithPlan(dataset, split, cfg, *plan);
      if (!fae.ok()) {
        std::printf("  fae failed: %s\n", fae.status().ToString().c_str());
        continue;
      }
      const double speedup = base.modeled_seconds / fae->modeled_seconds;
      speedup_sum += speedup;
      ++speedup_count;
      std::printf("%-22s %5d %14s %14s %8.2fx\n",
                  std::string(WorkloadName(kind)).c_str(), gpus,
                  HumanSeconds(base.modeled_seconds).c_str(),
                  HumanSeconds(fae->modeled_seconds).c_str(), speedup);
    }
  }
  if (speedup_count > 0) {
    std::printf("\nmean speedup: %.2fx over %d configurations\n",
                speedup_sum / speedup_count, speedup_count);
  }
  std::printf(
      "\nPaper reference (Table IV, 10 epochs): e.g. Kaggle 245.3->122.7 min\n"
      "(1 GPU), Terabyte 364.8->156.4 min (4 GPUs); mean speedup 2.34x.\n");
}

}  // namespace
}  // namespace fae

int main(int argc, char** argv) {
  fae::bench::Args args(argc, argv);
  fae::Run(args);
  return 0;
}
