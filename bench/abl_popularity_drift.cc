// Ablation (beyond the paper): FAE's static once-per-dataset calibration
// under *drifting* popularity. The paper assumes the hot set is stable
// ("certain inputs are always going to be more popular than the others");
// real logs trend. This harness rotates the hot set through the tables
// over the dataset and measures what happens to FAE's hot coverage and
// modeled speedup.
//
// Expected: with drift, the union of hot sets over time inflates the hot
// slice the budget must hold while the *instantaneous* hot-input fraction
// sags at both ends; speedup degrades smoothly and re-calibration (here:
// classifying from a sample of the same epoch being trained) restores it.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/input_processor.h"
#include "engine/trainer.h"
#include "models/factory.h"
#include "util/string_util.h"

namespace fae {
namespace {

void Run(const bench::Args& args) {
  const size_t inputs = args.GetNonNegativeInt("inputs", 60000);
  const int gpus = static_cast<int>(args.GetPositiveInt("gpus", 4));
  const DatasetScale scale = DatasetScale::kTiny;

  bench::PrintHeader("Ablation: FAE under popularity drift");
  std::printf("%d GPUs, Kaggle-like workload, %zu inputs\n\n", gpus, inputs);
  std::printf("%-8s %12s %12s %12s %12s %10s %10s %10s\n", "drift",
              "hot-all%", "hot-early%", "hot-late%", "hot-slice", "speedup",
              "demoted", "fallback");

  for (double drift : {0.0, 0.05, 0.2, 0.5, 1.0}) {
    DatasetSchema schema = MakeKaggleLikeSchema(scale);
    SyntheticGenerator gen(schema,
                           {.seed = 42, .popularity_drift = drift});
    Dataset dataset = gen.Generate(inputs);
    Dataset::Split split = dataset.MakeSplit(0.1);

    FaeConfig cfg;
    cfg.sample_rate = 0.25;
    cfg.large_table_bytes = bench::LargeTableCutoff(scale);
    cfg.gpu_memory_budget =
        bench::HotBudget(scale, schema.embedding_dim);
    cfg.num_threads = 2;
    FaePipeline pipeline(cfg);
    auto plan = pipeline.Prepare(dataset, split.train);
    if (!plan.ok()) {
      std::printf("%-8.2f calibration failed: %s\n", drift,
                  plan.status().ToString().c_str());
      continue;
    }

    // Hot-input fraction at the two ends of the dataset (the plan is
    // built from a uniform sample over all of it).
    InputProcessor processor(2);
    const size_t decile = dataset.size() / 10;
    std::vector<uint64_t> early_ids(decile);
    std::vector<uint64_t> late_ids(decile);
    for (size_t i = 0; i < decile; ++i) {
      early_ids[i] = i;
      late_ids[i] = dataset.size() - decile + i;
    }
    const double early =
        processor.Classify(dataset, plan->hot_set, early_ids).HotFraction();
    const double late =
        processor.Classify(dataset, plan->hot_set, late_ids).HotFraction();

    TrainOptions opt;
    opt.per_gpu_batch = 1024;
    opt.epochs = 1;
    opt.run_math = false;

    SystemSpec sys = MakePaperServer(gpus);
    sys.hot_embedding_budget = cfg.gpu_memory_budget;
    auto base_model = MakeModel(schema, true, 5);
    Trainer base_trainer(base_model.get(), sys, opt);
    TrainReport base = base_trainer.TrainBaseline(dataset, split);
    auto fae_model = MakeModel(schema, true, 5);
    Trainer fae_trainer(fae_model.get(), sys, opt);
    auto fae = fae_trainer.TrainFaeWithPlan(dataset, split, cfg, *plan);
    if (!fae.ok()) {
      std::printf("%-8.2f training failed: %s\n", drift,
                  fae.status().ToString().c_str());
      continue;
    }
    // When drift inflates the union hot set past the GPU budget, the
    // trainer demotes overflow rows instead of aborting (graceful
    // degradation); the last two columns show how much fell back.
    std::printf("%-8.2f %11.1f%% %11.1f%% %11.1f%% %12s %9.2fx %10llu %10llu\n",
                drift, 100 * fae->hot_fraction, 100 * early, 100 * late,
                HumanBytes(fae->hot_bytes).c_str(),
                base.modeled_seconds / fae->modeled_seconds,
                static_cast<unsigned long long>(fae->demoted_rows),
                static_cast<unsigned long long>(fae->fallback_inputs));
  }
  std::printf(
      "\nReading: moderate drift inflates the *union* hot set (the slice\n"
      "grows toward the budget and early/late coverage diverges); at a full\n"
      "rotation no input stays entirely hot and FAE degenerates to the\n"
      "baseline (speedup 1.0x) — the deployment caveat behind the paper's\n"
      "static-popularity assumption. When the union slice outgrows the GPU\n"
      "budget the trainer demotes the least useful rows (demoted/fallback\n"
      "columns) rather than aborting. Production use would re-run the cheap\n"
      "sampled calibration as the serving distribution moves.\n");
}

}  // namespace
}  // namespace fae

int main(int argc, char** argv) {
  fae::bench::Args args(argc, argv);
  fae::Run(args);
  return 0;
}
