// Reproduces Fig 15: FAE speedup over the baseline as the mini-batch size
// grows (4 GPUs, weak scaling).
//
// Paper shape: larger mini-batches amortize FAE's replication/sync
// overhead, pushing the speedup up to ~4.7x at large batches.

#include <cstdio>

#include "bench/bench_util.h"
#include "engine/trainer.h"
#include "models/factory.h"
#include "util/string_util.h"

namespace fae {
namespace {

void Run(const bench::Args& args) {
  const DatasetScale scale =
      bench::ParseScale(args.GetString("scale", "tiny"));
  // Default to inputs >> table rows, the regime of the paper's datasets
  // (45M-80M inputs vs <=10M-row tables).
  const size_t inputs = args.GetNonNegativeInt("inputs", 60000);
  const int gpus = static_cast<int>(args.GetPositiveInt("gpus", 4));

  bench::PrintHeader("Fig 15: FAE speedup vs per-GPU mini-batch size");
  std::printf("%d GPUs, weak scaling\n\n", gpus);
  std::printf("%-22s %10s %14s %14s %9s\n", "workload", "batch", "baseline",
              "fae", "speedup");

  for (WorkloadKind kind : bench::AllWorkloads()) {
    Dataset dataset = bench::MakeWorkloadDataset(kind, scale, inputs);
    Dataset::Split split = dataset.MakeSplit(0.1);

    FaeConfig cfg;
    cfg.sample_rate = 0.25;
    cfg.large_table_bytes = bench::LargeTableCutoff(scale);
    cfg.gpu_memory_budget =
        bench::HotBudget(scale, dataset.schema().embedding_dim);
    cfg.num_threads = 2;
    FaePipeline pipeline(cfg);
    auto plan = pipeline.Prepare(dataset, split.train);
    if (!plan.ok()) {
      std::printf("%s: plan failed\n",
                  std::string(WorkloadName(kind)).c_str());
      continue;
    }

    for (size_t batch : {256u, 1024u, 4096u, 8192u}) {
      TrainOptions opt;
      opt.per_gpu_batch = batch;
      opt.epochs = 1;
      opt.run_math = false;

      SystemSpec sys = MakePaperServer(gpus);
      sys.hot_embedding_budget = cfg.gpu_memory_budget;
      auto base_model = MakeModel(dataset.schema(), true, 5);
      Trainer base_trainer(base_model.get(), sys, opt);
      TrainReport base = base_trainer.TrainBaseline(dataset, split);
      auto fae_model = MakeModel(dataset.schema(), true, 5);
      Trainer fae_trainer(fae_model.get(), sys, opt);
      auto fae = fae_trainer.TrainFaeWithPlan(dataset, split, cfg, *plan);
      if (!fae.ok()) continue;
      std::printf("%-22s %10zu %14s %14s %8.2fx\n",
                  std::string(WorkloadName(kind)).c_str(), batch,
                  HumanSeconds(base.modeled_seconds).c_str(),
                  HumanSeconds(fae->modeled_seconds).c_str(),
                  base.modeled_seconds / fae->modeled_seconds);
    }
  }
  std::printf(
      "\nPaper reference: speedups grow with the mini-batch size, up to\n"
      "~4.7x at large batches (Fig 15).\n");
}

}  // namespace
}  // namespace fae

int main(int argc, char** argv) {
  fae::bench::Args args(argc, argv);
  fae::Run(args);
  return 0;
}
