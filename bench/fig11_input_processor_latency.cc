// Reproduces Fig 11: latency of the input processor's hot/cold
// classification across access thresholds, parallelized over CPU cores.
//
// Paper shape: lower thresholds classify more entries as hot but the pass
// remains a bounded single scan (max ~110 s on their 16-core machine for
// the full datasets; seconds here at reduced scale).
//
// Also reports the seed AoS layout's classification latency next to the
// flat SoA streaming pass's (the "layout" column).

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/seed_baseline.h"
#include "core/embedding_classifier.h"
#include "core/embedding_logger.h"
#include "core/input_processor.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace fae {
namespace {

void Run(const bench::Args& args) {
  const DatasetScale scale =
      bench::ParseScale(args.GetString("scale", "small"));
  const size_t inputs = args.GetNonNegativeInt("inputs", 30000);
  const size_t threads = args.GetPositiveInt("threads", 4);

  bench::PrintHeader("Fig 11: input-processor classification latency");
  std::printf("%zu worker threads\n\n", threads);
  std::printf("%-22s %-12s %12s %12s %10s %12s\n", "workload", "threshold",
              "seed", "flat", "layout", "hot-inputs%");

  for (WorkloadKind kind : bench::AllWorkloads()) {
    Dataset dataset = bench::MakeWorkloadDataset(kind, scale, inputs);
    const std::vector<SparseInput> aos = bench::MaterializeAos(dataset);
    std::vector<uint64_t> all_ids(dataset.size());
    for (size_t i = 0; i < all_ids.size(); ++i) all_ids[i] = i;
    AccessProfile profile =
        EmbeddingLogger::Profile(dataset, all_ids).profile;
    InputProcessor processor(threads);

    for (double t : {1e-2, 1e-3, 1e-4, 1e-5}) {
      const uint64_t h_zt = std::max<uint64_t>(
          1,
          static_cast<uint64_t>(t * static_cast<double>(dataset.size())));
      HotSet hot = EmbeddingClassifier::Classify(
          profile, dataset.schema(), h_zt, bench::LargeTableCutoff(scale));
      std::vector<uint64_t> seed_hot;
      std::vector<uint64_t> seed_cold;
      Stopwatch watch;
      bench::SeedClassify(aos, hot, all_ids, &seed_hot, &seed_cold);
      const double seed_s = watch.ElapsedSeconds();
      ProcessedInputs out = processor.Classify(dataset, hot, all_ids);
      std::printf("%-22s %-12.0e %12s %12s %9.1fx %11.1f%%\n",
                  std::string(WorkloadName(kind)).c_str(), t,
                  HumanSeconds(seed_s).c_str(),
                  HumanSeconds(out.seconds).c_str(),
                  out.seconds > 0 ? seed_s / out.seconds : 0.0,
                  100.0 * out.HotFraction());
    }
  }
  std::printf(
      "\nPaper reference: even for very low thresholds the classification\n"
      "pass finishes within ~110 s (full datasets, 16 cores). The layout\n"
      "column is the flat SoA streaming pass's gain over the seed AoS walk.\n");
}

}  // namespace
}  // namespace fae

int main(int argc, char** argv) {
  fae::bench::Args args(argc, argv);
  fae::Run(args);
  return 0;
}
