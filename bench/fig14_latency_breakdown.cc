// Reproduces Fig 14 + Table V: per-phase latency breakdown of baseline and
// FAE executions (1/2/4 GPUs) and the absolute CPU-GPU communication time.
//
// Paper shape: the CPU-side sparse optimizer dominates the baseline; FAE
// adds an embedding-sync slice but removes most optimizer and transfer
// time; communication drops ~4x-6x (Table V).

#include <cstdio>

#include "bench/bench_util.h"
#include "engine/trainer.h"
#include "models/factory.h"
#include "util/string_util.h"

namespace fae {
namespace {

void PrintBreakdown(const char* label, const Timeline& tl) {
  const double total = tl.TotalSeconds();
  std::printf("  %-10s total %-10s", label, HumanSeconds(total).c_str());
  for (Phase phase :
       {Phase::kEmbeddingForward, Phase::kMlpForward, Phase::kMlpBackward,
        Phase::kEmbeddingBackward, Phase::kOptimizerSparse,
        Phase::kOptimizerDense, Phase::kCpuGpuTransfer, Phase::kAllReduce,
        Phase::kEmbeddingSync}) {
    const double pct = total > 0 ? 100.0 * tl.seconds(phase) / total : 0.0;
    if (pct < 0.05) continue;
    std::printf(" %s=%.1f%%", std::string(PhaseName(phase)).c_str(), pct);
  }
  std::printf("\n");
}

void Run(const bench::Args& args) {
  const DatasetScale scale =
      bench::ParseScale(args.GetString("scale", "tiny"));
  // Default to inputs >> table rows, the regime of the paper's datasets
  // (45M-80M inputs vs <=10M-row tables).
  const size_t inputs = args.GetNonNegativeInt("inputs", 60000);

  bench::PrintHeader("Fig 14: latency breakdown; Table V: CPU-GPU comms");

  struct CommRow {
    std::string workload;
    int gpus;
    double base_comm;
    double fae_comm;
  };
  std::vector<CommRow> comm_rows;

  for (WorkloadKind kind : bench::AllWorkloads()) {
    Dataset dataset = bench::MakeWorkloadDataset(kind, scale, inputs);
    Dataset::Split split = dataset.MakeSplit(0.1);
    const size_t per_gpu_batch =
        kind == WorkloadKind::kTaobaoTbsm ? 256 : 1024;

    FaeConfig cfg;
    cfg.sample_rate = 0.25;
    cfg.large_table_bytes = bench::LargeTableCutoff(scale);
    cfg.gpu_memory_budget =
        bench::HotBudget(scale, dataset.schema().embedding_dim);
    cfg.num_threads = 2;
    FaePipeline pipeline(cfg);
    auto plan = pipeline.Prepare(dataset, split.train);
    if (!plan.ok()) {
      std::printf("%s: plan failed: %s\n",
                  std::string(WorkloadName(kind)).c_str(),
                  plan.status().ToString().c_str());
      continue;
    }

    std::printf("\n%s (hot inputs %.1f%%, hot slice %s)\n",
                std::string(WorkloadName(kind)).c_str(),
                100 * plan->inputs.HotFraction(),
                HumanBytes(plan->hot_bytes).c_str());

    for (int gpus : {1, 2, 4}) {
      TrainOptions opt;
      opt.per_gpu_batch = per_gpu_batch;
      opt.epochs = 1;
      opt.run_math = false;

      SystemSpec sys = MakePaperServer(gpus);
      sys.hot_embedding_budget = cfg.gpu_memory_budget;
      auto base_model = MakeModel(dataset.schema(), true, 5);
      Trainer base_trainer(base_model.get(), sys, opt);
      TrainReport base = base_trainer.TrainBaseline(dataset, split);

      auto fae_model = MakeModel(dataset.schema(), true, 5);
      Trainer fae_trainer(fae_model.get(), sys, opt);
      auto fae = fae_trainer.TrainFaeWithPlan(dataset, split, cfg, *plan);
      if (!fae.ok()) continue;

      std::printf(" %d GPU(s):\n", gpus);
      PrintBreakdown("baseline", base.timeline);
      PrintBreakdown("fae", fae->timeline);

      const double base_comm =
          base.timeline.seconds(Phase::kCpuGpuTransfer) +
          base.timeline.seconds(Phase::kEmbeddingSync);
      const double fae_comm =
          fae->timeline.seconds(Phase::kCpuGpuTransfer) +
          fae->timeline.seconds(Phase::kEmbeddingSync);
      comm_rows.push_back({std::string(WorkloadName(kind)), gpus, base_comm,
                           fae_comm});
    }
  }

  std::printf("\nTable V: CPU-GPU communication time\n");
  std::printf("%-22s %5s %14s %14s %9s\n", "workload", "gpus", "baseline",
              "fae", "ratio");
  for (const CommRow& row : comm_rows) {
    std::printf("%-22s %5d %14s %14s %8.2fx\n", row.workload.c_str(),
                row.gpus, HumanSeconds(row.base_comm).c_str(),
                HumanSeconds(row.fae_comm).c_str(),
                row.fae_comm > 0 ? row.base_comm / row.fae_comm : 0.0);
  }
  std::printf(
      "\nPaper reference: baseline is dominated by the CPU-side sparse\n"
      "optimizer; FAE's embedding-sync overhead stays small; Table V shows\n"
      "communication dropping e.g. 11.05->2.5 min (Kaggle, 1 GPU).\n");
}

}  // namespace
}  // namespace fae

int main(int argc, char** argv) {
  fae::bench::Args args(argc, argv);
  fae::Run(args);
  return 0;
}
