// Reproduces Fig 9: estimated hot-embedding sizes from the Rand-Em Box's
// random chunk sampling vs the measured (full-scan) sizes.
//
// Paper shape: with a 99.9% confidence interval the estimate is within
// ~10% (upper bound) of the measured size.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/embedding_logger.h"
#include "core/rand_em_box.h"
#include "util/string_util.h"

namespace fae {
namespace {

void Run(const bench::Args& args) {
  const DatasetScale scale =
      bench::ParseScale(args.GetString("scale", "small"));
  const size_t inputs = args.GetNonNegativeInt("inputs", 0);

  bench::PrintHeader("Fig 9: Rand-Em Box size estimates vs measured");
  std::printf("%-22s %-10s %12s %12s %12s %8s\n", "workload", "threshold",
              "measured", "estimate", "upper-CI", "err%");

  const RandEmBox box(35, 1024, 0.999, 99);
  for (WorkloadKind kind : bench::AllWorkloads()) {
    Dataset dataset = bench::MakeWorkloadDataset(kind, scale, inputs);
    std::vector<uint64_t> all_ids(dataset.size());
    for (size_t i = 0; i < all_ids.size(); ++i) all_ids[i] = i;
    AccessProfile profile =
        EmbeddingLogger::Profile(dataset, all_ids).profile;
    const size_t dim_bytes = dataset.schema().embedding_dim * sizeof(float);

    for (double t : {1e-3, 1e-4}) {
      const uint64_t h_zt = std::max<uint64_t>(
          1,
          static_cast<uint64_t>(t * static_cast<double>(dataset.size())));
      double measured = 0.0;
      double estimated = 0.0;
      double upper = 0.0;
      for (size_t z = 0; z < dataset.schema().num_tables(); ++z) {
        if (dataset.schema().TableBytes(z) <
            bench::LargeTableCutoff(scale)) {
          continue;
        }
        measured += static_cast<double>(
                        RandEmBox::ExactCount(profile.counts(z), h_zt)) *
                    dim_bytes;
        RandEmBox::Estimate est = box.EstimateTable(profile.counts(z), h_zt);
        estimated += est.mean_hot_entries * dim_bytes;
        upper += est.upper_hot_entries * dim_bytes;
      }
      const double err =
          measured > 0 ? 100.0 * (upper - measured) / measured : 0.0;
      std::printf("%-22s %-10.0e %12s %12s %12s %7.1f%%\n",
                  std::string(WorkloadName(kind)).c_str(), t,
                  HumanBytes(static_cast<uint64_t>(measured)).c_str(),
                  HumanBytes(static_cast<uint64_t>(estimated)).c_str(),
                  HumanBytes(static_cast<uint64_t>(upper)).c_str(), err);
    }
  }
  std::printf(
      "\nPaper reference: estimates are within 10%% (upper bound) of the\n"
      "measured hot sizes at 99.9%% confidence.\n");
}

}  // namespace
}  // namespace fae

int main(int argc, char** argv) {
  fae::bench::Args args(argc, argv);
  fae::Run(args);
  return 0;
}
