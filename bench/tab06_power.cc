// Reproduces Table VI: per-GPU average power, baseline vs FAE.
//
// Paper shape: FAE draws 5.3-8.8% less power per GPU, attributed to the
// reduced CPU-GPU communication. The power model (sim/device.cc) is
// calibrated to the V100's ~50 W P0-idle plus a communication-active
// increment; see EXPERIMENTS.md for the calibration notes.

#include <cstdio>

#include "bench/bench_util.h"
#include "engine/trainer.h"
#include "models/factory.h"

namespace fae {
namespace {

void Run(const bench::Args& args) {
  const DatasetScale scale =
      bench::ParseScale(args.GetString("scale", "tiny"));
  // Default to inputs >> table rows, the regime of the paper's datasets
  // (45M-80M inputs vs <=10M-row tables).
  const size_t inputs = args.GetNonNegativeInt("inputs", 60000);
  const int gpus = static_cast<int>(args.GetPositiveInt("gpus", 4));

  bench::PrintHeader("Table VI: per-GPU power, baseline vs FAE");
  std::printf("%d GPUs, paper per-GPU batch sizes (1K Criteo, 256 Taobao)\n\n",
              gpus);
  std::printf("%-22s %10s %10s %10s\n", "workload", "baseline", "fae",
              "reduction");

  for (WorkloadKind kind : bench::AllWorkloads()) {
    Dataset dataset = bench::MakeWorkloadDataset(kind, scale, inputs);
    Dataset::Split split = dataset.MakeSplit(0.1);

    FaeConfig cfg;
    cfg.sample_rate = 0.25;
    cfg.large_table_bytes = bench::LargeTableCutoff(scale);
    cfg.gpu_memory_budget =
        bench::HotBudget(scale, dataset.schema().embedding_dim);
    cfg.num_threads = 2;
    FaePipeline pipeline(cfg);
    auto plan = pipeline.Prepare(dataset, split.train);
    if (!plan.ok()) continue;

    TrainOptions opt;
    opt.per_gpu_batch = kind == WorkloadKind::kTaobaoTbsm ? 256 : 1024;
    opt.epochs = 1;
    opt.run_math = false;

    SystemSpec sys = MakePaperServer(gpus);
    sys.hot_embedding_budget = cfg.gpu_memory_budget;
    auto base_model = MakeModel(dataset.schema(), true, 5);
    Trainer base_trainer(base_model.get(), sys, opt);
    TrainReport base = base_trainer.TrainBaseline(dataset, split);
    auto fae_model = MakeModel(dataset.schema(), true, 5);
    Trainer fae_trainer(fae_model.get(), sys, opt);
    auto fae = fae_trainer.TrainFaeWithPlan(dataset, split, cfg, *plan);
    if (!fae.ok()) continue;

    std::printf("%-22s %9.2fW %9.2fW %9.1f%%\n",
                std::string(WorkloadName(kind)).c_str(), base.avg_gpu_watts,
                fae->avg_gpu_watts,
                100.0 * (base.avg_gpu_watts - fae->avg_gpu_watts) /
                    base.avg_gpu_watts);
  }
  std::printf(
      "\nPaper reference (Table VI): baseline 58.9-62.5 W, FAE 55.8-57.0 W,\n"
      "a 5.3-8.8%% reduction.\n");
}

}  // namespace
}  // namespace fae

int main(int argc, char** argv) {
  fae::bench::Args args(argc, argv);
  fae::Run(args);
  return 0;
}
