// Reproduces Fig 2: total embedding-table size vs the size of the hot
// portion, plus the share of accesses the hot entries capture, for the
// three Table I workloads.
//
// Paper shape to reproduce: tables are orders of magnitude larger than the
// hot slice (61 GB vs ~78 MB for Terabyte at paper scale); hot entries
// capture 75-92% of accesses.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/embedding_classifier.h"
#include "core/embedding_logger.h"
#include "util/string_util.h"

namespace fae {
namespace {

void Run(const bench::Args& args) {
  const DatasetScale scale =
      bench::ParseScale(args.GetString("scale", "small"));
  const size_t inputs = args.GetNonNegativeInt("inputs", 0);
  const double threshold = args.GetDouble("threshold", 1e-4);

  bench::PrintHeader(
      "Fig 2: embedding table sizes vs hot portions (per workload)");
  std::printf("%-22s %12s %12s %10s %12s %8s\n", "workload", "total",
              "hot", "hot-rows%", "hot-access%", "gini");

  for (WorkloadKind kind : bench::AllWorkloads()) {
    Dataset dataset = bench::MakeWorkloadDataset(kind, scale, inputs);
    std::vector<uint64_t> all_ids(dataset.size());
    for (size_t i = 0; i < all_ids.size(); ++i) all_ids[i] = i;
    EmbeddingLogger::Result logged =
        EmbeddingLogger::Profile(dataset, all_ids);
    const uint64_t h_zt = std::max<uint64_t>(
        1, static_cast<uint64_t>(threshold *
                                 static_cast<double>(dataset.size())));
    HotSet hot = EmbeddingClassifier::Classify(
        logged.profile, dataset.schema(), h_zt,
        bench::LargeTableCutoff(scale));

    uint64_t total_rows = 0;
    uint64_t hot_rows = 0;
    for (size_t t = 0; t < dataset.schema().num_tables(); ++t) {
      total_rows += dataset.schema().table_rows[t];
      hot_rows += hot.HotCount(t);
    }
    std::printf("%-22s %12s %12s %9.2f%% %11.1f%% %8.3f\n",
                std::string(WorkloadName(kind)).c_str(),
                HumanBytes(dataset.schema().TotalEmbeddingBytes()).c_str(),
                HumanBytes(hot.HotBytes(dataset.schema().embedding_dim))
                    .c_str(),
                100.0 * static_cast<double>(hot_rows) /
                    static_cast<double>(total_rows),
                100.0 * hot.HotAccessShare(logged.profile),
                logged.profile.Gini(0));
  }
  std::printf(
      "\nPaper reference: hot portions are under 256 MB while tables reach\n"
      "tens of GBs; hot entries capture 75-92%% of all accesses.\n");
}

}  // namespace
}  // namespace fae

int main(int argc, char** argv) {
  fae::bench::Args args(argc, argv);
  fae::Run(args);
  return 0;
}
