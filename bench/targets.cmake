# One binary per reproduced table/figure (DESIGN.md §4). Every binary runs
# in seconds with its defaults; --scale/--inputs grow the workload.
#
# Included from the top-level CMakeLists (not add_subdirectory) so that
# ${CMAKE_BINARY_DIR}/bench holds *only* the bench executables and
# `for b in build/bench/*; do $b; done` works unmodified.

set(FAE_BENCHES
  fig02_hot_sizes
  fig04_minibatch_probability
  fig06_threshold_sweep
  fig07_sampling_profile
  fig08_sampling_latency
  fig09_randem_accuracy
  fig10_randem_latency
  fig11_input_processor_latency
  fig12_accuracy
  fig13_training_time
  fig14_latency_breakdown
  fig15_batch_size_sweep
  tab06_power
  nvopt_comparison
  abl_scheduler_policy
  abl_sample_rate
  abl_sync_strategy
  abl_placements
  ext_multinode
  ext_serving
  abl_popularity_drift
  abl_pipelined
  abl_lookahead_cache
  abl_stale_skip
  abl_mixed_precision
  abl_randem_params
  pipeline_throughput
)

foreach(bench ${FAE_BENCHES})
  add_executable(${bench} ${CMAKE_SOURCE_DIR}/bench/${bench}.cc)
  target_link_libraries(${bench} PRIVATE fae)
  target_include_directories(${bench} PRIVATE ${CMAKE_SOURCE_DIR})
  set_target_properties(${bench} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endforeach()

add_executable(micro_kernels ${CMAKE_SOURCE_DIR}/bench/micro_kernels.cc)
target_link_libraries(micro_kernels PRIVATE fae benchmark::benchmark)
target_include_directories(micro_kernels PRIVATE ${CMAKE_SOURCE_DIR})
set_target_properties(micro_kernels PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

# Smoke-test the kernel bench under ctest (and under -DFAE_SANITIZE=ON
# builds): tiny sizes, one rep, and the built-in old-vs-new bit-exactness
# checks. Fails if any new kernel disagrees with the seed scalar path.
add_test(NAME bench_smoke
  COMMAND micro_kernels --smoke --out=${CMAKE_BINARY_DIR}/bench/BENCH_kernels_smoke.json)

# Same deal for the data-pipeline bench (seed AoS layout vs flat SoA
# layout): --smoke shrinks the workload and keeps the built-in seed-vs-flat
# bit-exactness checks, which fail the test on any disagreement.
add_test(NAME bench_pipeline_smoke
  COMMAND pipeline_throughput --smoke --out=${CMAKE_BINARY_DIR}/bench/BENCH_pipeline_smoke.json)

# Pipelined-trainer gate: runs the real engine in every --pipeline mode,
# asserts the phase charges are bit-identical across modes, and fails
# unless FAE's overlap mode beats serial FAE by >= 1.3x on the modeled
# wall. Deterministic (simulated time, cost-only), so smoke == full run.
add_test(NAME bench_pipelined_smoke
  COMMAND abl_pipelined --smoke --out=${CMAKE_BINARY_DIR}/bench/BENCH_pipelined_smoke.json)

# Lookahead-oracle-cache gate: pipelined FAE with the cache on vs the PR-4
# overlap baseline. Fails unless the cache cuts the cold steps' effective
# CPU<->GPU bytes >= 2x, beats the overlap baseline >= 1.15x end to end,
# and leaves the phase-charge totals bit-identical cache on/off.
add_test(NAME bench_cache_smoke
  COMMAND abl_lookahead_cache --smoke --out=${CMAKE_BINARY_DIR}/bench/BENCH_cache_smoke.json)

# Stale-update-skipping gate: the real engine (math ON) sweeping freeze
# thresholds. Fails unless --stale-threshold=0 is bit-identical to
# --stale-skip=off, and the best threshold whose final test loss stays
# within 0.5% of the exact run cuts the modeled wall >= 1.15x (modeled
# time-to-accuracy at comparable accuracy).
add_test(NAME bench_stale_skip_smoke
  COMMAND abl_stale_skip --smoke
    --out=${CMAKE_BINARY_DIR}/bench/BENCH_stale_skip_smoke.json)

# Quantized cold-store gate: the dim-64 Terabyte workload through the real
# engine in every --cold-precision mode. Fails unless the int8 cold store
# is >= 3x (fp16 >= 1.9x) smaller than the same rows at fp32, the int8
# error stays under the per-row scale/2 bound, master tables are
# bit-identical across modes when everything is hot, and the reclaimed
# budget fed back to the calibrator buys >= 1.1x on the modeled wall.
add_test(NAME bench_quant_smoke
  COMMAND abl_mixed_precision --smoke --out=${CMAKE_BINARY_DIR}/bench/BENCH_quant_smoke.json)

# Multi-node sharding gate: the FAE engine in every --sharding mode over
# {1,4} nodes (full run sweeps {1,2,4,8}). Fails unless the statistical
# placement beats whole-table LPT >= 1.3x on the modeled step time at 4
# nodes, its imbalance stays <= 1.15, and losses plus the per-phase charge
# totals are bit-identical across all three modes.
add_test(NAME bench_multinode_smoke
  COMMAND ext_multinode --smoke
    --out=${CMAKE_BINARY_DIR}/bench/BENCH_multinode_smoke.json)

# Serving gate: drift-free vs drifting traffic, with and without the
# SLO-triggered recalibration + hot-swap, plus an injected-fault run.
# Fails unless recalibration recovers the hit rate to within 5 points of
# drift-free, p99 stays bounded, and every injected fault degrades to
# stale/fallback service (never an outage) with recoveries counted.
add_test(NAME bench_serving_smoke
  COMMAND ext_serving --smoke
    --out=${CMAKE_BINARY_DIR}/bench/BENCH_serving_smoke.json
    --swap=${CMAKE_BINARY_DIR}/bench/BENCH_serving_swap.faef)
