// Ablation: wholesale hot-slice sync (the paper's scheme) vs dirty-row
// delta sync at every hot<->cold transition.
//
// Expected: identical training math (verified in
// tests/engine/placements_test.cc), strictly fewer synced bytes, and a
// smaller embedding-sync share — a straightforward optimization over the
// paper's design, mattering most when hot slices are large (the paper
// notes Kaggle's larger hot slice inflates its sync share, Fig 14).

#include <cstdio>

#include "bench/bench_util.h"
#include "engine/trainer.h"
#include "models/factory.h"
#include "util/string_util.h"

namespace fae {
namespace {

void Run(const bench::Args& args) {
  const DatasetScale scale =
      bench::ParseScale(args.GetString("scale", "tiny"));
  const size_t inputs = args.GetNonNegativeInt("inputs", 60000);
  const int gpus = static_cast<int>(args.GetPositiveInt("gpus", 4));

  bench::PrintHeader("Ablation: full vs dirty-row embedding sync");
  std::printf("%d GPUs\n\n", gpus);
  std::printf("%-22s %-7s %12s %12s %12s %10s\n", "workload", "sync",
              "synced", "sync-time", "total", "sync%");

  for (WorkloadKind kind : bench::AllWorkloads()) {
    Dataset dataset = bench::MakeWorkloadDataset(kind, scale, inputs);
    Dataset::Split split = dataset.MakeSplit(0.1);
    FaeConfig cfg;
    cfg.sample_rate = 0.25;
    cfg.large_table_bytes = bench::LargeTableCutoff(scale);
    cfg.gpu_memory_budget =
        bench::HotBudget(scale, dataset.schema().embedding_dim);
    cfg.num_threads = 2;
    FaePipeline pipeline(cfg);
    auto plan = pipeline.Prepare(dataset, split.train);
    if (!plan.ok()) continue;

    for (SyncStrategy strategy : {SyncStrategy::kFull, SyncStrategy::kDirty}) {
      TrainOptions opt;
      opt.per_gpu_batch = kind == WorkloadKind::kTaobaoTbsm ? 256 : 1024;
      opt.epochs = 1;
      opt.run_math = false;
      opt.sync_strategy = strategy;

      SystemSpec sys = MakePaperServer(gpus);
      sys.hot_embedding_budget = cfg.gpu_memory_budget;
      auto model = MakeModel(dataset.schema(), true, 5);
      Trainer trainer(model.get(), sys, opt);
      auto report = trainer.TrainFaeWithPlan(dataset, split, cfg, *plan);
      if (!report.ok()) continue;
      const double sync_s = report->timeline.seconds(Phase::kEmbeddingSync);
      std::printf("%-22s %-7s %12s %12s %12s %9.1f%%\n",
                  std::string(WorkloadName(kind)).c_str(),
                  strategy == SyncStrategy::kFull ? "full" : "dirty",
                  HumanBytes(report->sync_bytes).c_str(),
                  HumanSeconds(sync_s).c_str(),
                  HumanSeconds(report->modeled_seconds).c_str(),
                  100.0 * sync_s / report->modeled_seconds);
    }
  }
  std::printf(
      "\nDirty sync ships only updated rows; both variants are numerically\n"
      "identical (tests/engine/placements_test.cc).\n");
}

}  // namespace
}  // namespace fae

int main(int argc, char** argv) {
  fae::bench::Args args(argc, argv);
  fae::Run(args);
  return 0;
}
