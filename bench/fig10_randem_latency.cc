// Reproduces Fig 10: latency per threshold-iteration when estimating hot
// sizes with the Rand-Em Box vs scanning every embedding entry.
//
// Paper shape: 14.5x-61x lower latency per iteration; the scan ratio is
// bounded by (entries scanned)/(n*m).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/embedding_logger.h"
#include "core/rand_em_box.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace fae {
namespace {

void Run(const bench::Args& args) {
  const DatasetScale scale =
      bench::ParseScale(args.GetString("scale", "medium"));
  const size_t inputs = args.GetNonNegativeInt("inputs", 20000);
  const int reps = static_cast<int>(args.GetPositiveInt("reps", 5));

  bench::PrintHeader(
      "Fig 10: per-iteration latency, full scan vs Rand-Em Box");
  std::printf("%-22s %12s %12s %10s %12s\n", "workload", "full-scan",
              "rand-em", "speedup", "scan-ratio");

  const RandEmBox box(35, 1024, 0.999, 10);
  for (WorkloadKind kind : bench::AllWorkloads()) {
    Dataset dataset = bench::MakeWorkloadDataset(kind, scale, inputs);
    std::vector<uint64_t> all_ids(dataset.size());
    for (size_t i = 0; i < all_ids.size(); ++i) all_ids[i] = i;
    AccessProfile profile =
        EmbeddingLogger::Profile(dataset, all_ids).profile;
    const uint64_t h_zt = 4;

    uint64_t total_entries = 0;
    uint64_t scanned_entries = 0;
    double full_s = 0.0;
    double box_s = 0.0;
    for (int r = 0; r < reps; ++r) {
      Stopwatch full_watch;
      uint64_t sink = 0;
      for (size_t z = 0; z < dataset.schema().num_tables(); ++z) {
        if (dataset.schema().TableBytes(z) <
            bench::LargeTableCutoff(scale)) {
          continue;
        }
        sink += RandEmBox::ExactCount(profile.counts(z), h_zt);
      }
      full_s += full_watch.ElapsedSeconds();
      Stopwatch box_watch;
      for (size_t z = 0; z < dataset.schema().num_tables(); ++z) {
        if (dataset.schema().TableBytes(z) <
            bench::LargeTableCutoff(scale)) {
          continue;
        }
        RandEmBox::Estimate est = box.EstimateTable(profile.counts(z), h_zt);
        if (r == 0) {
          scanned_entries += est.scanned_entries;
          total_entries += profile.counts(z).size();
        }
        sink += static_cast<uint64_t>(est.mean_hot_entries);
      }
      box_s += box_watch.ElapsedSeconds();
      if (sink == 0xdeadbeef) std::printf("!");  // keep `sink` live
    }
    full_s /= reps;
    box_s /= reps;
    std::printf("%-22s %12s %12s %9.1fx %11.1fx\n",
                std::string(WorkloadName(kind)).c_str(),
                HumanSeconds(full_s).c_str(), HumanSeconds(box_s).c_str(),
                box_s > 0 ? full_s / box_s : 0.0,
                scanned_entries > 0
                    ? static_cast<double>(total_entries) /
                          static_cast<double>(scanned_entries)
                    : 0.0);
  }
  std::printf(
      "\nPaper reference: 14.5x-61x lower latency per threshold iteration;\n"
      "the total per-iteration latency stays in seconds, not minutes.\n");
}

}  // namespace
}  // namespace fae

int main(int argc, char** argv) {
  fae::bench::Args args(argc, argv);
  fae::Run(args);
  return 0;
}
