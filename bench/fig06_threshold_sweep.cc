// Reproduces Fig 6: (a) hot-embedding size and (b) percentage of hot
// sparse inputs as the access threshold varies.
//
// Paper shape: as the threshold decreases, the hot-table size grows much
// faster than the hot-input percentage (diminishing returns).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/embedding_classifier.h"
#include "core/embedding_logger.h"
#include "core/input_processor.h"
#include "util/string_util.h"

namespace fae {
namespace {

void Run(const bench::Args& args) {
  const DatasetScale scale =
      bench::ParseScale(args.GetString("scale", "small"));
  const size_t inputs = args.GetNonNegativeInt("inputs", 0);
  const std::string workload = args.GetString("workload", "kaggle");
  const WorkloadKind kind = workload == "taobao"
                                ? WorkloadKind::kTaobaoTbsm
                                : (workload == "terabyte"
                                       ? WorkloadKind::kTerabyteDlrm
                                       : WorkloadKind::kKaggleDlrm);

  Dataset dataset = bench::MakeWorkloadDataset(kind, scale, inputs);
  std::vector<uint64_t> all_ids(dataset.size());
  for (size_t i = 0; i < all_ids.size(); ++i) all_ids[i] = i;
  EmbeddingLogger::Result logged = EmbeddingLogger::Profile(dataset, all_ids);
  InputProcessor processor(2);

  bench::PrintHeader("Fig 6: hot size and hot-input share vs threshold");
  std::printf("workload: %s, %zu inputs\n\n",
              std::string(WorkloadName(kind)).c_str(), dataset.size());
  std::printf("%-12s %10s %14s %12s %12s\n", "threshold", "h_zt",
              "hot-size", "hot-inputs%", "hot-access%");

  for (double t : {3e-2, 1e-2, 3e-3, 1e-3, 3e-4, 1e-4, 3e-5}) {
    const uint64_t h_zt = std::max<uint64_t>(
        1,
        static_cast<uint64_t>(t * static_cast<double>(dataset.size())));
    HotSet hot = EmbeddingClassifier::Classify(
        logged.profile, dataset.schema(), h_zt,
        bench::LargeTableCutoff(scale));
    ProcessedInputs split = processor.Classify(dataset, hot, all_ids);
    std::printf("%-12.0e %10llu %14s %11.1f%% %11.1f%%\n", t,
                static_cast<unsigned long long>(h_zt),
                HumanBytes(hot.HotBytes(dataset.schema().embedding_dim))
                    .c_str(),
                100.0 * split.HotFraction(),
                100.0 * hot.HotAccessShare(logged.profile));
  }
  std::printf(
      "\nPaper reference: the hot-embedding size grows more steeply than\n"
      "the hot-input share as the threshold drops (Fig 6a vs 6b).\n");
}

}  // namespace
}  // namespace fae

int main(int argc, char** argv) {
  fae::bench::Args args(argc, argv);
  fae::Run(args);
  return 0;
}
