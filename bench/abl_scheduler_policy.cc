// Ablation: the Shuffle Scheduler's adaptive rate (Eq 7) vs fixed rates
// R(1), R(50), R(100). Measures final test accuracy (real math) and the
// number of hot<->cold transitions (each costs one hot-slice sync).
//
// Expected: R(100) minimizes sync but risks accuracy (hot-only stretches);
// R(1) maximizes shuffling at maximal sync cost; the adaptive policy sits
// near R(1)/R(50) accuracy at a fraction of the transitions.

#include <cstdio>

#include "bench/bench_util.h"
#include "engine/trainer.h"
#include "models/factory.h"
#include "util/string_util.h"

namespace fae {
namespace {

void Run(const bench::Args& args) {
  const size_t inputs = args.GetNonNegativeInt("inputs", 6000);
  const size_t epochs = args.GetPositiveInt("epochs", 2);
  const DatasetScale scale = DatasetScale::kTiny;

  bench::PrintHeader("Ablation: adaptive vs fixed scheduler rates");
  std::printf("%-10s %12s %12s %12s %14s\n", "policy", "test-acc%",
              "test-loss", "transitions", "sync-time");

  Dataset dataset = bench::MakeWorkloadDataset(WorkloadKind::kKaggleDlrm,
                                               scale, inputs);
  Dataset::Split split = dataset.MakeSplit(0.15);

  struct Policy {
    const char* name;
    double initial;
    bool adaptive;
  };
  const Policy policies[] = {{"adaptive", 50.0, true},
                             {"R(1)", 1.0, false},
                             {"R(50)", 50.0, false},
                             {"R(100)", 100.0, false}};

  for (const Policy& policy : policies) {
    FaeConfig cfg;
    cfg.sample_rate = 0.2;
    cfg.large_table_bytes = bench::LargeTableCutoff(scale);
    cfg.gpu_memory_budget =
        bench::HotBudget(scale, dataset.schema().embedding_dim);
    cfg.num_threads = 2;
    cfg.initial_rate = policy.initial;
    if (!policy.adaptive) {
      // Pin the rate by collapsing the adaptation band.
      cfg.min_rate = policy.initial;
      cfg.max_rate = policy.initial;
    }

    TrainOptions opt;
    opt.per_gpu_batch = 64;
    opt.epochs = epochs;
    opt.run_math = true;
    opt.eval_samples = 512;

    auto model = MakeModel(dataset.schema(), false, 5);
    Trainer trainer(model.get(), MakePaperServer(1), opt);
    auto report = trainer.TrainFae(dataset, split, cfg);
    if (!report.ok()) {
      std::printf("%-10s failed: %s\n", policy.name,
                  report.status().ToString().c_str());
      continue;
    }
    std::printf("%-10s %11.2f%% %12.4f %12zu %14s\n", policy.name,
                100 * report->final_test_acc, report->final_test_loss,
                report->transitions,
                HumanSeconds(
                    report->timeline.seconds(Phase::kEmbeddingSync))
                    .c_str());
  }
  std::printf(
      "\nDesign note (DESIGN.md): Eq 7 trades sync overhead against the\n"
      "shuffling the optimizer needs; the adaptive policy should match\n"
      "fine-grained shuffling accuracy with fewer transitions than R(1).\n");
}

}  // namespace
}  // namespace fae

int main(int argc, char** argv) {
  fae::bench::Args args(argc, argv);
  fae::Run(args);
  return 0;
}
