// Reproduces Fig 8: reduction in profiling latency when the input dataset
// is sampled (5%) instead of fully scanned.
//
// Paper shape: 19x-55x lower latency (Taobao highest because each input
// carries up to 21 sub-inputs), total sampled time well under 200 s.
//
// Also reports the flat SoA layout's full-scan latency next to the seed
// AoS layout's (the "layout" column) — sampling and layout gains compose.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/seed_baseline.h"
#include "core/embedding_logger.h"
#include "stats/sampling.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace fae {
namespace {

void Run(const bench::Args& args) {
  const DatasetScale scale =
      bench::ParseScale(args.GetString("scale", "small"));
  // Enough inputs that the profiling pass dominates constant-time
  // allocation overheads (the paper profiles 10M-80M inputs).
  const size_t inputs = args.GetNonNegativeInt("inputs", 100000);
  const double rate = args.GetDouble("rate", 0.05);
  const int reps = static_cast<int>(args.GetPositiveInt("reps", 5));

  bench::PrintHeader("Fig 8: profiling latency, full scan vs 5% sample");
  std::printf("%-22s %12s %12s %12s %10s %10s\n", "workload", "full(seed)",
              "full(flat)", "sampled", "sampling", "layout");

  for (WorkloadKind kind : bench::AllWorkloads()) {
    Dataset dataset = bench::MakeWorkloadDataset(kind, scale, inputs);
    const std::vector<SparseInput> aos = bench::MaterializeAos(dataset);
    std::vector<uint64_t> all_ids(dataset.size());
    for (size_t i = 0; i < all_ids.size(); ++i) all_ids[i] = i;
    Xoshiro256 rng(8);
    std::vector<uint64_t> sampled_ids =
        BernoulliSampleIndices(dataset.size(), rate, rng);

    double seed_s = 0.0;
    double full_s = 0.0;
    double sample_s = 0.0;
    for (int r = 0; r < reps; ++r) {
      Stopwatch watch;
      bench::SeedProfile(dataset.schema(), aos, all_ids);
      seed_s += watch.ElapsedSeconds();
      full_s += EmbeddingLogger::Profile(dataset, all_ids).seconds;
      sample_s += EmbeddingLogger::Profile(dataset, sampled_ids).seconds;
    }
    seed_s /= reps;
    full_s /= reps;
    sample_s /= reps;
    std::printf("%-22s %12s %12s %12s %9.1fx %9.1fx\n",
                std::string(WorkloadName(kind)).c_str(),
                HumanSeconds(seed_s).c_str(), HumanSeconds(full_s).c_str(),
                HumanSeconds(sample_s).c_str(),
                sample_s > 0 ? full_s / sample_s : 0.0,
                full_s > 0 ? seed_s / full_s : 0.0);
  }
  std::printf(
      "\nPaper reference: 19x-55x latency reduction; the expected sampling\n"
      "speedup is ~1/rate = %.0fx (Taobao exceeds it due to multi-lookup\n"
      "inputs' allocation effects at full scan). The layout column is the\n"
      "flat SoA streaming pass's gain over the seed AoS walk at full scan.\n",
      1.0 / rate);
}

}  // namespace
}  // namespace fae

int main(int argc, char** argv) {
  fae::bench::Args args(argc, argv);
  fae::Run(args);
  return 0;
}
