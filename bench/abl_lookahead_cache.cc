// Lookahead-oracle-cache ablation (the PR gate for --cache, DESIGN.md
// §13): runs the real engine with the pipelined FAE trainer — the PR-4
// overlap baseline — with the cache off and on, plus the synchronous
// baseline driver and a budget sweep for context.
//
// Three things are checked, and all fail the binary (ctest's
// bench_cache_smoke runs it with --smoke):
//   1. Determinism: phase-charge totals are bit-identical cache on/off —
//      the cache is a cost-model overlay, it never changes what work is
//      charged (math-level bit-exactness is pinned separately by
//      PipelineDeterminismTest and the checkpoint-byte checks).
//   2. Transfer gate: the oracle cache must cut the cold steps' effective
//      CPU<->GPU traffic by >= 2x against the plain 2x pooled-activation
//      round trip (prefetch + writeback DMA included — no hiding bytes).
//   3. Wall gate: cached overlapped FAE must beat the PR-4 overlap
//      baseline by >= 1.15x end to end on the modeled wall.
//
// The workload matches abl_pipelined (zipf 1.8, generous hot budget): the
// cold minority is exactly where the cache bites, because FAE already
// moved the hot majority onto the GPUs.
//
// Usage:
//   abl_lookahead_cache [--out=BENCH_cache.json] [--inputs=8000]
//                       [--batch=256] [--epochs=2] [--gpus=4] [--zipf=1.8]
//                       [--budget-kb=1024] [--depth=2]
//                       [--cache-budget-rows=20000] [--cache-lookahead=8]
//                       [--smoke]
//
// Timing uses the simulator's modeled seconds (deterministic, so no reps),
// with --cost-only math skipped; results are identical run to run.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/fae_pipeline.h"
#include "data/synthetic.h"
#include "engine/trainer.h"
#include "models/factory.h"
#include "util/string_util.h"

namespace fae {
namespace {

struct CaseResult {
  std::string driver;  // baseline | fae
  size_t cache_budget_rows = 0;  // 0 = cache off
  double modeled_seconds = 0.0;
  double phase_sum_seconds = 0.0;
  double overlap_saved_seconds = 0.0;
  double cache_saved_seconds = 0.0;
  double cache_hit_rate = 0.0;
  uint64_t plain_transfer_bytes = 0;
  uint64_t effective_transfer_bytes = 0;
  uint64_t prefetch_bytes = 0;
  uint64_t writeback_bytes = 0;
};

struct Suite {
  size_t inputs = 8000;
  size_t batch = 256;
  size_t epochs = 2;
  int gpus = 4;
  double zipf = 1.8;
  uint64_t budget_bytes = 1024ULL << 10;
  size_t depth = 2;
  size_t cache_budget_rows = 20000;
  size_t cache_lookahead = 8;
};

constexpr double kTransferGate = 2.0;
constexpr double kWallGate = 1.15;

TrainOptions MakeOptions(const Suite& s, size_t cache_budget_rows) {
  TrainOptions opt;
  opt.per_gpu_batch = s.batch;
  opt.epochs = s.epochs;
  opt.run_math = false;  // cost-only: the modeled wall is the measurement
  opt.pipeline = PipelineMode::kOverlap;  // the PR-4 overlap baseline
  opt.pipeline_depth = s.depth;
  if (cache_budget_rows > 0) {
    opt.cache = CacheMode::kOracle;
    opt.cache_budget_rows = cache_budget_rows;
    opt.cache_lookahead = s.cache_lookahead;
  }
  return opt;
}

void WriteJson(const std::string& path, const Suite& s, double hot_fraction,
               const std::vector<CaseResult>& results,
               double transfer_reduction, double wall_speedup,
               bool deterministic, bool gate_ok) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(2);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"suite\": \"abl_lookahead_cache\",\n");
  std::fprintf(f, "  \"workload\": \"kaggle_dlrm_tiny\",\n");
  std::fprintf(f, "  \"inputs\": %zu,\n", s.inputs);
  std::fprintf(f, "  \"per_gpu_batch\": %zu,\n", s.batch);
  std::fprintf(f, "  \"epochs\": %zu,\n", s.epochs);
  std::fprintf(f, "  \"gpus\": %d,\n", s.gpus);
  std::fprintf(f, "  \"zipf\": %.3f,\n", s.zipf);
  std::fprintf(f, "  \"hot_budget_bytes\": %llu,\n",
               static_cast<unsigned long long>(s.budget_bytes));
  std::fprintf(f, "  \"pipeline_depth\": %zu,\n", s.depth);
  std::fprintf(f, "  \"cache_lookahead\": %zu,\n", s.cache_lookahead);
  std::fprintf(f, "  \"hot_input_fraction\": %.4f,\n", hot_fraction);
  std::fprintf(f, "  \"phase_sums_bit_identical_cache_on_off\": %s,\n",
               deterministic ? "true" : "false");
  std::fprintf(f, "  \"criterion_transfer_reduction\": %.3f,\n",
               transfer_reduction);
  std::fprintf(f, "  \"criterion_transfer_gate\": %.2f,\n", kTransferGate);
  std::fprintf(f, "  \"criterion_wall_speedup\": %.3f,\n", wall_speedup);
  std::fprintf(f, "  \"criterion_wall_gate\": %.2f,\n", kWallGate);
  std::fprintf(f, "  \"criterion_ok\": %s,\n", gate_ok ? "true" : "false");
  std::fprintf(f, "  \"cases\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    std::fprintf(
        f,
        "    {\"driver\": \"%s\", \"cache_budget_rows\": %zu, "
        "\"modeled_seconds\": %.9f, \"phase_sum_seconds\": %.9f, "
        "\"overlap_saved_seconds\": %.9f, \"cache_saved_seconds\": %.9f, "
        "\"cache_hit_rate\": %.4f, \"plain_transfer_bytes\": %llu, "
        "\"effective_transfer_bytes\": %llu, \"prefetch_bytes\": %llu, "
        "\"writeback_bytes\": %llu}%s\n",
        r.driver.c_str(), r.cache_budget_rows, r.modeled_seconds,
        r.phase_sum_seconds, r.overlap_saved_seconds, r.cache_saved_seconds,
        r.cache_hit_rate,
        static_cast<unsigned long long>(r.plain_transfer_bytes),
        static_cast<unsigned long long>(r.effective_transfer_bytes),
        static_cast<unsigned long long>(r.prefetch_bytes),
        static_cast<unsigned long long>(r.writeback_bytes),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int Run(int argc, char** argv) {
  bench::Args args(argc, argv);
  Suite s;
  const bool smoke = args.GetBool("smoke", false);
  s.inputs = static_cast<size_t>(args.GetNonNegativeInt("inputs", (long)s.inputs));
  s.batch = static_cast<size_t>(args.GetPositiveInt("batch", (long)s.batch));
  s.epochs = static_cast<size_t>(args.GetPositiveInt("epochs", (long)s.epochs));
  s.gpus = static_cast<int>(args.GetPositiveInt("gpus", s.gpus));
  s.zipf = args.GetDouble("zipf", s.zipf);
  s.budget_bytes = args.GetPositiveInt("budget-kb", 1024) * 1024ull;
  s.depth = static_cast<size_t>(args.GetPositiveInt("depth", (long)s.depth));
  s.cache_budget_rows = static_cast<size_t>(
      args.GetPositiveInt("cache-budget-rows", (long)s.cache_budget_rows));
  s.cache_lookahead = static_cast<size_t>(
      args.GetPositiveInt("cache-lookahead", (long)s.cache_lookahead));

  bench::PrintHeader(
      "Ablation: lookahead oracle cache (--cache) on the pipelined trainer");
  std::printf(
      "inputs=%zu batch=%zu epochs=%zu gpus=%d zipf=%.2f depth=%zu "
      "cache=%zu rows / %zu ahead\n",
      s.inputs, s.batch, s.epochs, s.gpus, s.zipf, s.depth,
      s.cache_budget_rows, s.cache_lookahead);

  DatasetSchema schema = MakeKaggleLikeSchema(DatasetScale::kTiny);
  SyntheticOptions gen_opt;
  gen_opt.seed = 42;
  gen_opt.zipf_exponent = s.zipf;
  Dataset dataset = SyntheticGenerator(schema, gen_opt).Generate(s.inputs);
  Dataset::Split split = dataset.MakeSplit(0.1);

  FaeConfig cfg;
  cfg.sample_rate = 0.25;
  cfg.large_table_bytes = bench::LargeTableCutoff(DatasetScale::kTiny);
  cfg.gpu_memory_budget = s.budget_bytes;
  cfg.num_threads = 2;
  FaePipeline pipeline(cfg);
  auto plan = pipeline.Prepare(dataset, split.train);
  if (!plan.ok()) {
    std::fprintf(stderr, "FAE preprocessing failed: %s\n",
                 plan.status().ToString().c_str());
    return 2;
  }
  const double hot_fraction = plan->inputs.HotFraction();
  std::printf("hot input fraction: %.2f\n\n", hot_fraction);

  const SystemSpec sys = MakePaperServer(s.gpus);
  std::vector<CaseResult> results;
  auto record = [&](const std::string& driver, size_t budget,
                    const TrainReport& report) {
    results.push_back({driver, budget, report.modeled_seconds,
                       report.timeline.PhaseSumSeconds(),
                       report.overlap_saved_seconds,
                       report.cache_saved_seconds, report.cache_hit_rate,
                       report.cache_plain_transfer_bytes,
                       report.cache_effective_transfer_bytes,
                       report.cache_prefetch_bytes,
                       report.cache_writeback_bytes});
  };

  // A starved budget rides along to show honest partial-win behavior (and
  // to prove the gate numbers are not a degenerate 100%-hit artifact).
  const std::vector<size_t> budgets = {0, s.cache_budget_rows / 8,
                                       s.cache_budget_rows};
  for (size_t budget : budgets) {
    auto model = MakeModel(schema, /*full_size=*/false, /*seed=*/5);
    Trainer trainer(model.get(), sys, MakeOptions(s, budget));
    record("baseline", budget, trainer.TrainBaseline(dataset, split));
  }
  for (size_t budget : budgets) {
    auto model = MakeModel(schema, /*full_size=*/false, /*seed=*/5);
    Trainer trainer(model.get(), sys, MakeOptions(s, budget));
    auto report = trainer.TrainFaeWithPlan(dataset, split, cfg, *plan);
    if (!report.ok()) {
      std::fprintf(stderr, "FAE training failed: %s\n",
                   report.status().ToString().c_str());
      return 2;
    }
    record("fae", budget, *report);
  }

  std::printf("%-9s %10s %12s %12s %8s %12s %12s\n", "driver", "budget",
              "modeled", "cache-saved", "hit%", "xfer-plain", "xfer-eff");
  for (const CaseResult& r : results) {
    std::printf("%-9s %10zu %12s %12s %7.1f%% %12s %12s\n", r.driver.c_str(),
                r.cache_budget_rows, HumanSeconds(r.modeled_seconds).c_str(),
                HumanSeconds(r.cache_saved_seconds).c_str(),
                100.0 * r.cache_hit_rate,
                HumanBytes(r.plain_transfer_bytes).c_str(),
                HumanBytes(r.effective_transfer_bytes).c_str());
  }

  // Determinism: within a driver, every cache shape charges the exact same
  // phase totals — the cache only moves time off the modeled wall. (The
  // FAE driver's *overlap credit* legitimately shrinks with the cache on:
  // the double-count guard refuses to hide cold seconds under a hot chunk
  // when the cache already removed them, so overlap_saved is not part of
  // this identity.)
  bool deterministic = true;
  for (size_t d = 0; d < 2; ++d) {
    const size_t base = d * budgets.size();
    for (size_t c = 1; c < budgets.size(); ++c) {
      deterministic &= results[base + c].phase_sum_seconds ==
                       results[base].phase_sum_seconds;
    }
  }

  // Gates run on the full-budget FAE case against the cache-off PR-4
  // overlap baseline (results layout: [driver][budget index]).
  const CaseResult& fae_off = results[budgets.size()];
  const CaseResult& fae_on = results[2 * budgets.size() - 1];
  const double transfer_reduction =
      fae_on.effective_transfer_bytes > 0
          ? static_cast<double>(fae_on.plain_transfer_bytes) /
                static_cast<double>(fae_on.effective_transfer_bytes)
          : 0.0;
  const double wall_speedup =
      fae_on.modeled_seconds > 0.0
          ? fae_off.modeled_seconds / fae_on.modeled_seconds
          : 0.0;
  const bool gate_ok = transfer_reduction >= kTransferGate &&
                       wall_speedup >= kWallGate && deterministic;

  std::printf(
      "\ncold-step transfer reduction: %.2fx (gate: >= %.2fx)\n"
      "fae end-to-end speedup:       %.2fx (gate: >= %.2fx)\n"
      "phase sums bit-identical cache on/off: %s\n",
      transfer_reduction, kTransferGate, wall_speedup, kWallGate,
      deterministic ? "yes" : "NO");

  const std::string out = args.GetString("out", "BENCH_cache.json");
  WriteJson(out, s, hot_fraction, results, transfer_reduction, wall_speedup,
            deterministic, gate_ok);
  std::printf("wrote %s\n", out.c_str());

  if (!deterministic) {
    std::fprintf(stderr, "FAIL: cache shapes disagree on phase charges\n");
    return 1;
  }
  if (transfer_reduction < kTransferGate) {
    std::fprintf(stderr, "FAIL: transfer reduction %.2fx < %.2fx gate\n",
                 transfer_reduction, kTransferGate);
    return 1;
  }
  if (wall_speedup < kWallGate) {
    std::fprintf(stderr, "FAIL: end-to-end speedup %.2fx < %.2fx gate\n",
                 wall_speedup, kWallGate);
    return 1;
  }
  (void)smoke;  // same deterministic workload either way; kept for symmetry
  return 0;
}

}  // namespace
}  // namespace fae

int main(int argc, char** argv) { return fae::Run(argc, argv); }
