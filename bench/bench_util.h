#ifndef FAE_BENCH_BENCH_UTIL_H_
#define FAE_BENCH_BENCH_UTIL_H_

// Shared helpers for the reproduction harness binaries in bench/. Each
// binary regenerates one table or figure of the paper (see DESIGN.md §4)
// and prints the same rows/series the paper reports.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "data/schema.h"
#include "data/synthetic.h"

namespace fae::bench {

/// Minimal --key=value argument parser (no external deps).
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      // Search from index 2: '=' cannot appear inside the "--" prefix, and
      // telling the compiler so avoids a GCC 12 -Wrestrict false positive
      // on the substr below.
      const size_t eq = arg.find('=', 2);
      // insert_or_assign with string values sidesteps a GCC 12
      // -Wrestrict false positive in string::operator=(const char*)
      // (GCC PR105329).
      if (eq == std::string::npos) {
        values_.insert_or_assign(arg.substr(2), std::string("1"));
      } else {
        values_.insert_or_assign(arg.substr(2, eq - 2), arg.substr(eq + 1));
      }
    }
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  long GetInt(const std::string& key, long fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atol(it->second.c_str());
  }

  /// Strict signed-integer flag: the whole value must parse, and it must
  /// be >= `min_value`. GetInt is atol-based, so `--gpus=x` or `--gpus=-2`
  /// silently became a zero or negative resource count and the bench
  /// "ran" a nonsense cluster; resource-sizing flags reject that with an
  /// error naming the flag instead.
  long GetCheckedInt(const std::string& key, long fallback,
                     long min_value) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    const std::string& raw = it->second;
    errno = 0;
    char* end = nullptr;
    const long value = std::strtol(raw.c_str(), &end, 10);
    if (raw.empty() || errno != 0 || end != raw.c_str() + raw.size()) {
      std::fprintf(stderr, "error: --%s='%s' is not an integer\n",
                   key.c_str(), raw.c_str());
      std::exit(2);
    }
    if (value < min_value) {
      std::fprintf(stderr, "error: --%s must be >= %ld (got %ld)\n",
                   key.c_str(), min_value, value);
      std::exit(2);
    }
    return value;
  }

  /// GetCheckedInt for counts that must be >= 1 (gpus, nodes, batch,
  /// epochs, depth...).
  long GetPositiveInt(const std::string& key, long fallback) const {
    return GetCheckedInt(key, fallback, 1);
  }

  /// GetCheckedInt for knobs where 0 means "use the default" (inputs,
  /// seeds).
  long GetNonNegativeInt(const std::string& key, long fallback) const {
    return GetCheckedInt(key, fallback, 0);
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

  bool GetBool(const std::string& key, bool fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return it->second != "0" && it->second != "false";
  }

 private:
  std::map<std::string, std::string> values_;
};

inline DatasetScale ParseScale(const std::string& name) {
  if (name == "tiny") return DatasetScale::kTiny;
  if (name == "small") return DatasetScale::kSmall;
  if (name == "medium") return DatasetScale::kMedium;
  if (name == "paper") return DatasetScale::kPaper;
  std::fprintf(stderr, "unknown scale '%s' (tiny|small|medium|paper)\n",
               name.c_str());
  std::exit(2);
}

/// The three paper workloads, in Table I order.
inline std::vector<WorkloadKind> AllWorkloads() {
  return {WorkloadKind::kKaggleDlrm, WorkloadKind::kTaobaoTbsm,
          WorkloadKind::kTerabyteDlrm};
}

/// Builds a synthetic dataset for `kind` at `scale` with `num_inputs`
/// inputs (0 = a per-scale default kept small enough for quick runs).
inline Dataset MakeWorkloadDataset(WorkloadKind kind, DatasetScale scale,
                                   size_t num_inputs, uint64_t seed = 42) {
  DatasetSchema schema = MakeSchema(kind, scale);
  if (num_inputs == 0) {
    num_inputs = std::min<size_t>(DefaultNumInputs(kind, scale), 30000);
  }
  SyntheticGenerator gen(schema, {.seed = seed});
  return gen.Generate(num_inputs);
}

/// A large-table cutoff that keeps the hot/cold machinery meaningful at
/// every scale: the paper's 1 MB for medium and up, proportionally smaller
/// for the shrunken test scales.
inline uint64_t LargeTableCutoff(DatasetScale scale) {
  switch (scale) {
    case DatasetScale::kTiny:
      return 1ULL << 12;
    case DatasetScale::kSmall:
      return 1ULL << 16;
    case DatasetScale::kMedium:
    case DatasetScale::kPaper:
      return 1ULL << 20;  // paper value
  }
  return 1ULL << 20;
}

/// A GPU hot-embedding budget proportional to the scale (the paper's
/// L = 256 MB maps to the paper scale) and to the embedding dim, so the
/// dim-64 Terabyte workload sits at the same knob point as the dim-16
/// ones. Chosen so the calibrated threshold lands where the paper's does:
/// hot inputs in the high tens of percent, hot accesses >90%.
inline uint64_t HotBudget(DatasetScale scale, size_t embedding_dim) {
  uint64_t base = 256ULL << 20;
  switch (scale) {
    case DatasetScale::kTiny:
      base = 384ULL << 10;
      break;
    case DatasetScale::kSmall:
      base = 2ULL << 20;
      break;
    case DatasetScale::kMedium:
      base = 16ULL << 20;
      break;
    case DatasetScale::kPaper:
      base = 256ULL << 20;
      break;
  }
  return base * embedding_dim / 16;
}

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

}  // namespace fae::bench

#endif  // FAE_BENCH_BENCH_UTIL_H_
