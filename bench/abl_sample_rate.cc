// Ablation: the Sparse Input Sampler's rate x (paper fixes x = 5%).
//
// For each rate, the sampled profile drives the Embedding Classifier at a
// fixed threshold t and we measure what actually matters downstream: the
// hot-input fraction and the hot-access share the resulting hot set
// achieves (evaluated against the *full* profile), plus profiling latency.
//
// Expected: the downstream quantities converge well below x = 100% while
// latency keeps growing linearly — x = 5% sits on the flat part.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/embedding_classifier.h"
#include "core/embedding_logger.h"
#include "core/input_processor.h"
#include "stats/sampling.h"
#include "util/random.h"
#include "util/string_util.h"

namespace fae {
namespace {

void Run(const bench::Args& args) {
  const DatasetScale scale =
      bench::ParseScale(args.GetString("scale", "tiny"));
  const size_t inputs = args.GetNonNegativeInt("inputs", 60000);
  const double t = args.GetDouble("threshold", 1e-3);

  bench::PrintHeader("Ablation: input-sampler rate x");
  Dataset dataset = bench::MakeWorkloadDataset(WorkloadKind::kKaggleDlrm,
                                               scale, inputs);
  std::vector<uint64_t> all_ids(dataset.size());
  for (size_t i = 0; i < all_ids.size(); ++i) all_ids[i] = i;
  AccessProfile full = EmbeddingLogger::Profile(dataset, all_ids).profile;
  InputProcessor processor(2);
  const uint64_t cutoff = bench::LargeTableCutoff(scale);

  std::printf("%zu inputs, fixed threshold t = %.0e\n\n", dataset.size(), t);
  std::printf("%-8s %10s %12s %14s %14s\n", "rate", "sampled", "latency",
              "hot-inputs%", "hot-access%");

  for (double rate : {0.01, 0.02, 0.05, 0.10, 0.25, 0.50, 1.0}) {
    Xoshiro256 rng(4);
    std::vector<uint64_t> ids =
        BernoulliSampleIndices(dataset.size(), rate, rng);
    EmbeddingLogger::Result logged = EmbeddingLogger::Profile(dataset, ids);
    const uint64_t h_zt = std::max<uint64_t>(
        1, static_cast<uint64_t>(t * static_cast<double>(ids.size())));
    HotSet hot = EmbeddingClassifier::Classify(logged.profile,
                                               dataset.schema(), h_zt,
                                               cutoff);
    ProcessedInputs split = processor.Classify(dataset, hot, all_ids);
    std::printf("%-8.2f %10zu %12s %13.1f%% %13.1f%%\n", rate, ids.size(),
                HumanSeconds(logged.seconds).c_str(),
                100 * split.HotFraction(),
                100 * hot.HotAccessShare(full));
  }
  std::printf(
      "\nPaper reference: x = 5%% reproduces the full access signature\n"
      "(Fig 7) at 19x-55x lower profiling cost (Fig 8); the downstream\n"
      "hot/cold split is already stable at that rate.\n");
}

}  // namespace
}  // namespace fae

int main(int argc, char** argv) {
  fae::bench::Args args(argc, argv);
  fae::Run(args);
  return 0;
}
