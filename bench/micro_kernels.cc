// google-benchmark microbenchmarks for the compute kernels underlying the
// training engine: embedding-bag gather, sparse SGD scatter, MLP GEMMs,
// Zipf sampling, and the Rand-Em Box estimator.

#include <benchmark/benchmark.h>

#include "core/rand_em_box.h"
#include "embedding/embedding_bag.h"
#include "embedding/sparse_sgd.h"
#include "stats/zipf.h"
#include "tensor/mlp.h"
#include "tensor/ops.h"
#include "util/random.h"

namespace fae {
namespace {

void BM_EmbeddingBagForward(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  Xoshiro256 rng(1);
  EmbeddingTable table(100000, 16, rng);
  std::vector<uint32_t> indices(batch);
  std::vector<uint32_t> offsets(batch + 1);
  for (size_t i = 0; i < batch; ++i) {
    indices[i] = static_cast<uint32_t>(rng.NextBounded(table.rows()));
    offsets[i + 1] = static_cast<uint32_t>(i + 1);
  }
  for (auto _ : state) {
    Tensor out = EmbeddingBag::Forward(table, indices, offsets);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EmbeddingBagForward)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SparseSgdStep(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  Xoshiro256 rng(2);
  EmbeddingTable table(100000, 16, rng);
  SparseGrad grad;
  grad.dim = 16;
  for (size_t i = 0; i < rows; ++i) {
    grad.rows[rng.NextBounded(table.rows())] = std::vector<float>(16, 0.1f);
  }
  SparseSgd sgd(0.05f);
  for (auto _ : state) {
    sgd.Step(table, grad);
    benchmark::DoNotOptimize(table.raw().data());
  }
  state.SetItemsProcessed(state.iterations() * grad.rows.size());
}
BENCHMARK(BM_SparseSgdStep)->Arg(256)->Arg(4096);

void BM_MatMulNaive(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Xoshiro256 rng(11);
  Tensor a = Tensor::Randn(n, n, 1.0f, rng);
  Tensor b = Tensor::Randn(n, n, 1.0f, rng);
  for (auto _ : state) {
    Tensor c = MatMulNaive(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMulNaive)->Arg(128)->Arg(512);

void BM_MatMulBlocked(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Xoshiro256 rng(11);
  Tensor a = Tensor::Randn(n, n, 1.0f, rng);
  Tensor b = Tensor::Randn(n, n, 1.0f, rng);
  for (auto _ : state) {
    Tensor c = MatMulBlocked(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMulBlocked)->Arg(128)->Arg(512);

void BM_MlpForward(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  Xoshiro256 rng(3);
  Mlp mlp({13, 512, 256, 64, 16}, rng);
  Tensor x = Tensor::Randn(batch, 13, 1.0f, rng);
  for (auto _ : state) {
    Tensor y = mlp.ForwardInference(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_MlpForward)->Arg(64)->Arg(256);

void BM_PairwiseInteraction(benchmark::State& state) {
  const size_t features = static_cast<size_t>(state.range(0));
  Xoshiro256 rng(4);
  std::vector<Tensor> feats;
  std::vector<const Tensor*> ptrs;
  for (size_t i = 0; i < features; ++i) {
    feats.push_back(Tensor::Randn(256, 16, 1.0f, rng));
  }
  for (auto& f : feats) ptrs.push_back(&f);
  for (auto _ : state) {
    Tensor out = PairwiseDotInteraction(ptrs);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_PairwiseInteraction)->Arg(8)->Arg(27);

void BM_ZipfSample(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  Xoshiro256 rng(5);
  ZipfSampler zipf(n, 1.05);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample)->Arg(100000)->Arg(73100000);

void BM_RandEmBoxEstimate(benchmark::State& state) {
  const uint64_t rows = static_cast<uint64_t>(state.range(0));
  Xoshiro256 rng(6);
  std::vector<uint64_t> counts(rows);
  for (auto& c : counts) c = rng.NextBounded(100);
  RandEmBox box(35, 1024, 0.999, 7);
  for (auto _ : state) {
    auto est = box.EstimateTable(counts, 50);
    benchmark::DoNotOptimize(est.mean_hot_entries);
  }
}
BENCHMARK(BM_RandEmBoxEstimate)->Arg(1000000)->Arg(10000000);

void BM_RandEmBoxExactScan(benchmark::State& state) {
  const uint64_t rows = static_cast<uint64_t>(state.range(0));
  Xoshiro256 rng(8);
  std::vector<uint64_t> counts(rows);
  for (auto& c : counts) c = rng.NextBounded(100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RandEmBox::ExactCount(counts, 50));
  }
}
BENCHMARK(BM_RandEmBoxExactScan)->Arg(1000000)->Arg(10000000);

}  // namespace
}  // namespace fae

BENCHMARK_MAIN();
