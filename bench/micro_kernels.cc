// Old-vs-new microbenchmark suite for the training hot-path kernels.
//
// The "seed" implementations below are verbatim copies of the scalar,
// map-based kernels this repo started with (unordered_map SparseGrad,
// un-annotated inner loops, no thread pool); the "new" measurements run
// the current kernel layer (src/tensor/kernels.h, flat SparseGrad,
// ThreadPool::ParallelFor) at 1 and 4 threads. Every pairing is also
// checked for bit-exact agreement — the determinism contract says the
// rewrite changes speed, never results.
//
// Usage:
//   micro_kernels [--out=bench/BENCH_kernels.json] [--reps=5] [--smoke]
//   micro_kernels --gbench          # legacy google-benchmark registrations
//
// --smoke shrinks every size so the whole suite runs in well under a
// second; ctest's bench_smoke target uses it (see EXPERIMENTS.md).
//
// Results are written as JSON. The headline number the kernel PR is gated
// on — fused embedding backward+optimizer at dim 64, batch 2048, 4 threads
// vs the seed scalar path — is surfaced as the top-level field
// "criterion_backward_dim64_t4_speedup".

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/rand_em_box.h"
#include "embedding/embedding_bag.h"
#include "embedding/embedding_table.h"
#include "embedding/sparse_sgd.h"
#include "stats/zipf.h"
#include "tensor/mlp.h"
#include "tensor/ops.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace fae {
namespace {

// ---------------------------------------------------------------------------
// Seed implementations (the pre-kernel-layer scalar path), kept here as the
// measurement baseline. Do not "improve" these: their value is being what
// the repo shipped before the rewrite.
// ---------------------------------------------------------------------------

struct LegacySparseGrad {
  size_t dim = 0;
  std::unordered_map<uint64_t, std::vector<float>> rows;
};

Tensor LegacyEmbeddingForward(const EmbeddingTable& table,
                              const std::vector<uint32_t>& indices,
                              const std::vector<uint32_t>& offsets) {
  const size_t b = offsets.size() - 1;
  const size_t dim = table.dim();
  Tensor out(b, dim);
  for (size_t i = 0; i < b; ++i) {
    float* orow = out.row(i);
    for (uint32_t p = offsets[i]; p < offsets[i + 1]; ++p) {
      const float* erow = table.row(indices[p]);
      for (size_t k = 0; k < dim; ++k) orow[k] += erow[k];
    }
  }
  return out;
}

LegacySparseGrad LegacyEmbeddingBackward(const Tensor& grad_out,
                                         const std::vector<uint32_t>& indices,
                                         const std::vector<uint32_t>& offsets,
                                         size_t dim) {
  LegacySparseGrad grad;
  grad.dim = dim;
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    const float* grow = grad_out.row(i);
    for (uint32_t p = offsets[i]; p < offsets[i + 1]; ++p) {
      auto [it, inserted] =
          grad.rows.try_emplace(indices[p], std::vector<float>(dim, 0.0f));
      std::vector<float>& acc = it->second;
      for (size_t k = 0; k < dim; ++k) acc[k] += grow[k];
    }
  }
  return grad;
}

void LegacySparseSgdStep(EmbeddingTable& table, const LegacySparseGrad& grad,
                         float lr) {
  for (const auto& [row_id, g] : grad.rows) {
    float* row = table.row(row_id);
    for (size_t k = 0; k < grad.dim; ++k) row[k] -= lr * g[k];
  }
}

Tensor LegacyMatMulBlocked(const Tensor& a, const Tensor& b) {
  Tensor c(a.rows(), b.cols());
  constexpr size_t kKc = 128;
  constexpr size_t kJc = 128;
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  for (size_t k0 = 0; k0 < k; k0 += kKc) {
    const size_t k1 = std::min(k, k0 + kKc);
    for (size_t j0 = 0; j0 < n; j0 += kJc) {
      const size_t j1 = std::min(n, j0 + kJc);
      for (size_t i = 0; i < m; ++i) {
        const float* arow = a.row(i);
        float* crow = c.row(i);
        for (size_t kk = k0; kk < k1; ++kk) {
          const float av = arow[kk];
          if (av == 0.0f) continue;
          const float* brow = b.row(kk);
          for (size_t j = j0; j < j1; ++j) {
            crow[j] += av * brow[j];
          }
        }
      }
    }
  }
  return c;
}

// ---------------------------------------------------------------------------
// Timing harness: calibrate an iteration count against a time target, then
// take the fastest of `reps` averaged runs (min-of-reps rejects scheduler
// noise without the variance of single-shot timing).
// ---------------------------------------------------------------------------

struct TimingConfig {
  int reps = 5;
  double target_seconds = 0.02;  // per calibrated timing run
};

double SecondsPerIter(const std::function<void()>& fn,
                      const TimingConfig& cfg) {
  fn();  // warm caches and the allocator
  size_t iters = 1;
  for (;;) {
    Stopwatch sw;
    for (size_t i = 0; i < iters; ++i) fn();
    const double elapsed = sw.ElapsedSeconds();
    if (elapsed >= cfg.target_seconds || iters >= (1u << 22)) break;
    const double scale = cfg.target_seconds / std::max(elapsed, 1e-9);
    iters = std::max(iters + 1, static_cast<size_t>(iters * scale * 1.2));
  }
  double best = 1e100;
  for (int r = 0; r < cfg.reps; ++r) {
    Stopwatch sw;
    for (size_t i = 0; i < iters; ++i) fn();
    best = std::min(best, sw.ElapsedSeconds() / static_cast<double>(iters));
  }
  return best;
}

struct BenchResult {
  std::string kernel;  // gemm | embedding_forward | embedding_backward_opt
  std::string impl;    // seed | new
  size_t dim = 0;
  size_t batch = 0;
  size_t threads = 1;
  double seconds_per_iter = 0.0;
  double speedup_vs_seed = 1.0;
  bool bitexact_vs_seed = true;
};

bool TensorsEqual(const Tensor& a, const Tensor& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (size_t i = 0; i < a.numel(); ++i) {
    if (a.data()[i] != b.data()[i]) return false;
  }
  return true;
}

struct SuiteConfig {
  std::vector<size_t> dims;
  std::vector<size_t> threads;  // first entry must be 1
  size_t batch = 2048;
  size_t lookups_per_sample = 4;
  uint64_t table_rows = 100000;
  TimingConfig timing;
};

/// Synthetic CSR lookup list: `batch` samples, a fixed pooling factor,
/// uniform row ids (plenty of distinct rows, some collisions).
void MakeLookups(const SuiteConfig& cfg, Xoshiro256& rng,
                 std::vector<uint32_t>& indices,
                 std::vector<uint32_t>& offsets) {
  indices.clear();
  offsets.assign(1, 0);
  for (size_t i = 0; i < cfg.batch; ++i) {
    for (size_t j = 0; j < cfg.lookups_per_sample; ++j) {
      indices.push_back(static_cast<uint32_t>(rng.NextBounded(cfg.table_rows)));
    }
    offsets.push_back(static_cast<uint32_t>(indices.size()));
  }
}

/// Appends seed + per-thread-count new measurements for one kernel.
/// `run(pool)` must execute the new kernel (pool == nullptr → serial) and
/// `run_seed()` the legacy one; `check(pool)` returns bit-exactness of the
/// new result against the seed result.
void RunPair(const SuiteConfig& cfg, const std::string& kernel, size_t dim,
             const std::function<void()>& run_seed,
             const std::function<void(ThreadPool*)>& run_new,
             const std::function<bool(ThreadPool*)>& check,
             std::vector<BenchResult>& out) {
  BenchResult seed;
  seed.kernel = kernel;
  seed.impl = "seed";
  seed.dim = dim;
  seed.batch = cfg.batch;
  seed.threads = 1;
  seed.seconds_per_iter = SecondsPerIter(run_seed, cfg.timing);
  out.push_back(seed);
  for (size_t threads : cfg.threads) {
    ThreadPool local(threads > 1 ? threads : 1);
    ThreadPool* pool = threads > 1 ? &local : nullptr;
    BenchResult r;
    r.kernel = kernel;
    r.impl = "new";
    r.dim = dim;
    r.batch = cfg.batch;
    r.threads = threads;
    r.bitexact_vs_seed = check(pool);
    r.seconds_per_iter =
        SecondsPerIter([&] { run_new(pool); }, cfg.timing);
    r.speedup_vs_seed = seed.seconds_per_iter / r.seconds_per_iter;
    out.push_back(r);
  }
}

std::vector<BenchResult> RunSuite(const SuiteConfig& cfg) {
  std::vector<BenchResult> results;
  for (size_t dim : cfg.dims) {
    Xoshiro256 rng(1234 + dim);
    EmbeddingTable table(cfg.table_rows, dim, rng);
    std::vector<uint32_t> indices;
    std::vector<uint32_t> offsets;
    MakeLookups(cfg, rng, indices, offsets);
    Tensor grad_out = Tensor::Randn(cfg.batch, dim, 0.1f, rng);
    const float lr = 0.05f;

    // GEMM shaped like an MLP layer at this batch: [B, dim] x [dim, dim].
    Tensor a = Tensor::Randn(cfg.batch, dim, 1.0f, rng);
    Tensor b = Tensor::Randn(dim, dim, 1.0f, rng);
    RunPair(
        cfg, "gemm", dim,
        [&] {
          Tensor c = LegacyMatMulBlocked(a, b);
          benchmark::DoNotOptimize(c.data());
        },
        [&](ThreadPool* pool) {
          Tensor c = MatMulBlocked(a, b, pool);
          benchmark::DoNotOptimize(c.data());
        },
        [&](ThreadPool* pool) {
          return TensorsEqual(LegacyMatMulBlocked(a, b),
                              MatMulBlocked(a, b, pool));
        },
        results);

    // Sum-pooled embedding gather.
    RunPair(
        cfg, "embedding_forward", dim,
        [&] {
          Tensor o = LegacyEmbeddingForward(table, indices, offsets);
          benchmark::DoNotOptimize(o.data());
        },
        [&](ThreadPool* pool) {
          Tensor o = EmbeddingBag::Forward(table, indices, offsets, pool);
          benchmark::DoNotOptimize(o.data());
        },
        [&](ThreadPool* pool) {
          return TensorsEqual(
              LegacyEmbeddingForward(table, indices, offsets),
              EmbeddingBag::Forward(table, indices, offsets, pool));
        },
        results);

    // Backward scatter + optimizer. Seed: map-based scatter then the
    // map-walking SGD step. New: the fused flat-gradient pass. Both mutate
    // a private table so the timed loops stay self-contained.
    EmbeddingTable seed_table(cfg.table_rows, dim);
    EmbeddingTable new_table(cfg.table_rows, dim);
    SparseSgd sgd(lr);
    RunPair(
        cfg, "embedding_backward_opt", dim,
        [&] {
          LegacySparseGrad g =
              LegacyEmbeddingBackward(grad_out, indices, offsets, dim);
          LegacySparseSgdStep(seed_table, g, lr);
          benchmark::DoNotOptimize(seed_table.raw().data());
        },
        [&](ThreadPool* pool) {
          sgd.FusedBackwardStep(new_table, grad_out, indices, offsets, pool);
          benchmark::DoNotOptimize(new_table.raw().data());
        },
        [&](ThreadPool* pool) {
          // One step from identical fresh states must land on identical
          // tables.
          Xoshiro256 r1(99), r2(99);
          EmbeddingTable t1(cfg.table_rows, dim, r1);
          EmbeddingTable t2(cfg.table_rows, dim, r2);
          LegacySparseGrad g =
              LegacyEmbeddingBackward(grad_out, indices, offsets, dim);
          LegacySparseSgdStep(t1, g, lr);
          sgd.FusedBackwardStep(t2, grad_out, indices, offsets, pool);
          return t1.raw() == t2.raw();
        },
        results);
  }
  return results;
}

void WriteJson(const std::string& path, const SuiteConfig& cfg,
               const std::vector<BenchResult>& results, double criterion) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(2);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"suite\": \"micro_kernels\",\n");
  std::fprintf(f, "  \"batch\": %zu,\n", cfg.batch);
  std::fprintf(f, "  \"lookups_per_sample\": %zu,\n", cfg.lookups_per_sample);
  std::fprintf(f, "  \"table_rows\": %llu,\n",
               static_cast<unsigned long long>(cfg.table_rows));
  std::fprintf(f, "  \"criterion_backward_dim64_t4_speedup\": %.3f,\n",
               criterion);
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"impl\": \"%s\", \"dim\": %zu, "
                 "\"batch\": %zu, \"threads\": %zu, "
                 "\"seconds_per_iter\": %.9f, \"speedup_vs_seed\": %.3f, "
                 "\"bitexact_vs_seed\": %s}%s\n",
                 r.kernel.c_str(), r.impl.c_str(), r.dim, r.batch, r.threads,
                 r.seconds_per_iter, r.speedup_vs_seed,
                 r.bitexact_vs_seed ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

// ---------------------------------------------------------------------------
// Legacy google-benchmark registrations (run with --gbench); these measure
// the *current* kernels only, without the old-vs-new pairing.
// ---------------------------------------------------------------------------

void BM_EmbeddingBagForward(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  Xoshiro256 rng(1);
  EmbeddingTable table(100000, 16, rng);
  std::vector<uint32_t> indices(batch);
  std::vector<uint32_t> offsets(batch + 1);
  for (size_t i = 0; i < batch; ++i) {
    indices[i] = static_cast<uint32_t>(rng.NextBounded(table.rows()));
    offsets[i + 1] = static_cast<uint32_t>(i + 1);
  }
  for (auto _ : state) {
    Tensor out = EmbeddingBag::Forward(table, indices, offsets);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EmbeddingBagForward)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SparseSgdStep(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  Xoshiro256 rng(2);
  EmbeddingTable table(100000, 16, rng);
  std::vector<uint64_t> ids(rows);
  for (auto& id : ids) id = rng.NextBounded(table.rows());
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  SparseGrad grad;
  grad.dim = 16;
  grad.row_ids = std::move(ids);
  grad.values.assign(grad.row_ids.size() * 16, 0.1f);
  SparseSgd sgd(0.05f);
  for (auto _ : state) {
    sgd.Step(table, grad);
    benchmark::DoNotOptimize(table.raw().data());
  }
  state.SetItemsProcessed(state.iterations() * grad.num_rows());
}
BENCHMARK(BM_SparseSgdStep)->Arg(256)->Arg(4096);

void BM_MatMulNaive(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Xoshiro256 rng(11);
  Tensor a = Tensor::Randn(n, n, 1.0f, rng);
  Tensor b = Tensor::Randn(n, n, 1.0f, rng);
  for (auto _ : state) {
    Tensor c = MatMulNaive(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMulNaive)->Arg(128)->Arg(512);

void BM_MatMulBlocked(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Xoshiro256 rng(11);
  Tensor a = Tensor::Randn(n, n, 1.0f, rng);
  Tensor b = Tensor::Randn(n, n, 1.0f, rng);
  for (auto _ : state) {
    Tensor c = MatMulBlocked(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMulBlocked)->Arg(128)->Arg(512);

void BM_MlpForward(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  Xoshiro256 rng(3);
  Mlp mlp({13, 512, 256, 64, 16}, rng);
  Tensor x = Tensor::Randn(batch, 13, 1.0f, rng);
  for (auto _ : state) {
    Tensor y = mlp.ForwardInference(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_MlpForward)->Arg(64)->Arg(256);

void BM_PairwiseInteraction(benchmark::State& state) {
  const size_t features = static_cast<size_t>(state.range(0));
  Xoshiro256 rng(4);
  std::vector<Tensor> feats;
  std::vector<const Tensor*> ptrs;
  for (size_t i = 0; i < features; ++i) {
    feats.push_back(Tensor::Randn(256, 16, 1.0f, rng));
  }
  for (auto& f : feats) ptrs.push_back(&f);
  for (auto _ : state) {
    Tensor out = PairwiseDotInteraction(ptrs);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_PairwiseInteraction)->Arg(8)->Arg(27);

void BM_ZipfSample(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  Xoshiro256 rng(5);
  ZipfSampler zipf(n, 1.05);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample)->Arg(100000)->Arg(73100000);

void BM_RandEmBoxEstimate(benchmark::State& state) {
  const uint64_t rows = static_cast<uint64_t>(state.range(0));
  Xoshiro256 rng(6);
  std::vector<uint64_t> counts(rows);
  for (auto& c : counts) c = rng.NextBounded(100);
  RandEmBox box(35, 1024, 0.999, 7);
  for (auto _ : state) {
    auto est = box.EstimateTable(counts, 50);
    benchmark::DoNotOptimize(est.mean_hot_entries);
  }
}
BENCHMARK(BM_RandEmBoxEstimate)->Arg(1000000)->Arg(10000000);

void BM_RandEmBoxExactScan(benchmark::State& state) {
  const uint64_t rows = static_cast<uint64_t>(state.range(0));
  Xoshiro256 rng(8);
  std::vector<uint64_t> counts(rows);
  for (auto& c : counts) c = rng.NextBounded(100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RandEmBox::ExactCount(counts, 50));
  }
}
BENCHMARK(BM_RandEmBoxExactScan)->Arg(1000000)->Arg(10000000);

}  // namespace
}  // namespace fae

int main(int argc, char** argv) {
  fae::bench::Args args(argc, argv);
  if (args.GetBool("gbench", false)) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
  }

  fae::SuiteConfig cfg;
  const bool smoke = args.GetBool("smoke", false);
  if (smoke) {
    cfg.dims = {16};
    cfg.threads = {1, 2};
    cfg.batch = 256;
    cfg.table_rows = 2000;
    cfg.timing.reps = 1;
    cfg.timing.target_seconds = 0.001;
  } else {
    cfg.dims = {16, 64, 128};
    cfg.threads = {1, 4};
    cfg.batch = 2048;
    cfg.table_rows = 100000;
    cfg.timing.reps = static_cast<int>(args.GetPositiveInt("reps", 5));
    cfg.timing.target_seconds = 0.02;
  }

  fae::bench::PrintHeader(
      "micro_kernels: seed scalar path vs vectorized/threaded kernels");
  const std::vector<fae::BenchResult> results = fae::RunSuite(cfg);

  bool all_bitexact = true;
  double criterion = 0.0;
  std::printf("%-24s %-5s %5s %8s %12s %9s %9s\n", "kernel", "impl", "dim",
              "threads", "sec/iter", "speedup", "bitexact");
  for (const fae::BenchResult& r : results) {
    std::printf("%-24s %-5s %5zu %8zu %12.3e %8.2fx %9s\n", r.kernel.c_str(),
                r.impl.c_str(), r.dim, r.threads, r.seconds_per_iter,
                r.speedup_vs_seed, r.bitexact_vs_seed ? "yes" : "NO");
    all_bitexact = all_bitexact && r.bitexact_vs_seed;
    if (r.kernel == "embedding_backward_opt" && r.impl == "new" &&
        r.dim == 64 && r.threads == 4) {
      criterion = r.speedup_vs_seed;
    }
  }
  if (criterion > 0.0) {
    std::printf(
        "\nheadline: fused embedding backward+optimizer dim=64 batch=%zu "
        "threads=4 -> %.2fx vs seed\n",
        cfg.batch, criterion);
  }

  const std::string out = args.GetString("out", "bench/BENCH_kernels.json");
  fae::WriteJson(out, cfg, results, criterion);
  std::printf("wrote %s\n", out.c_str());

  if (!all_bitexact) {
    std::fprintf(stderr,
                 "FAIL: a new kernel disagrees with the seed result\n");
    return 1;
  }
  return 0;
}
