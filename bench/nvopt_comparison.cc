// Reproduces the §V NvOPT comparison: FAE vs a mixed-precision-on-GPU
// baseline that places fp16 embedding tables on the device with no
// access-awareness (largest-first, until GPU memory runs out).
//
// Paper shape: FAE is 1.48x faster than NvOPT on the Terabyte dataset
// (1 V100, 32K batch) because the access-aware hot slice serves most
// lookups from GPU memory while NvOPT's placement spills the hottest
// tables' traffic to the CPU whenever capacity is short.

#include <cstdio>

#include "bench/bench_util.h"
#include "engine/trainer.h"
#include "models/factory.h"
#include "util/string_util.h"

namespace fae {
namespace {

void Run(const bench::Args& args) {
  const DatasetScale scale =
      bench::ParseScale(args.GetString("scale", "tiny"));
  // Default to inputs >> table rows, the regime of the paper's datasets
  // (45M-80M inputs vs <=10M-row tables).
  const size_t inputs = args.GetNonNegativeInt("inputs", 60000);
  const size_t batch = args.GetPositiveInt("batch", 4096);
  // Shrink the modeled GPU memory so the fp16 tables do not all fit, as on
  // the paper's Terabyte dataset (30 GB fp16 vs 16 GB V100). Scaled-down
  // tables need a scaled-down capacity for the same regime.
  const double capacity_scale = args.GetDouble("capacity_scale", 0.0);

  bench::PrintHeader("SecV: FAE vs NvOPT-style mixed-precision baseline");
  std::printf("1 GPU, %zu per-GPU batch\n\n", batch);
  std::printf("%-22s %14s %14s %14s %12s\n", "workload", "baseline",
              "nvopt", "fae", "fae/nvopt");

  for (WorkloadKind kind : bench::AllWorkloads()) {
    Dataset dataset = bench::MakeWorkloadDataset(kind, scale, inputs);
    Dataset::Split split = dataset.MakeSplit(0.1);

    FaeConfig cfg;
    cfg.sample_rate = 0.25;
    cfg.large_table_bytes = bench::LargeTableCutoff(scale);
    cfg.gpu_memory_budget =
        bench::HotBudget(scale, dataset.schema().embedding_dim);
    cfg.num_threads = 2;
    FaePipeline pipeline(cfg);
    auto plan = pipeline.Prepare(dataset, split.train);
    if (!plan.ok()) continue;

    TrainOptions opt;
    opt.per_gpu_batch = batch;
    opt.epochs = 1;
    opt.run_math = false;

    SystemSpec sys = MakePaperServer(1);
    sys.hot_embedding_budget = cfg.gpu_memory_budget;
    // Default: capacity such that roughly half the fp16 bytes fit.
    const uint64_t total = dataset.schema().TotalEmbeddingBytes();
    sys.gpu.mem_capacity =
        capacity_scale > 0
            ? static_cast<uint64_t>(capacity_scale * sys.gpu.mem_capacity)
            : std::max<uint64_t>(total / 4, 1 << 20);

    auto base_model = MakeModel(dataset.schema(), true, 5);
    Trainer base_trainer(base_model.get(), sys, opt);
    TrainReport base = base_trainer.TrainBaseline(dataset, split);

    auto nv_model = MakeModel(dataset.schema(), true, 5);
    Trainer nv_trainer(nv_model.get(), sys, opt);
    TrainReport nv = nv_trainer.TrainNvOpt(dataset, split);

    auto fae_model = MakeModel(dataset.schema(), true, 5);
    Trainer fae_trainer(fae_model.get(), sys, opt);
    auto fae = fae_trainer.TrainFaeWithPlan(dataset, split, cfg, *plan);
    if (!fae.ok()) continue;

    std::printf("%-22s %14s %14s %14s %11.2fx\n",
                std::string(WorkloadName(kind)).c_str(),
                HumanSeconds(base.modeled_seconds).c_str(),
                HumanSeconds(nv.modeled_seconds).c_str(),
                HumanSeconds(fae->modeled_seconds).c_str(),
                nv.modeled_seconds / fae->modeled_seconds);
  }
  std::printf(
      "\nPaper reference: FAE is 1.48x faster than NvOPT on *Terabyte*\n"
      "(105.98 -> 71.58 min/epoch, 32K batch, one V100) — the dataset whose\n"
      "fp16 tables cannot fit the GPU. Kaggle/Taobao fit wholly in fp16 at\n"
      "paper scale, so NvOPT is competitive there and the paper makes no\n"
      "claim about them; only the Terabyte row reproduces a paper result.\n");
}

}  // namespace
}  // namespace fae

int main(int argc, char** argv) {
  fae::bench::Args args(argc, argv);
  fae::Run(args);
  return 0;
}
