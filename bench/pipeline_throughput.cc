// Seed-vs-flat data-pipeline throughput bench (the PR gate for the flat
// SoA dataset layout).
//
// The "seed" implementations below are verbatim copies of the pre-flat
// data layer: an array-of-structs `std::vector<SparseInput>` dataset,
// per-sample nested-vector walks in the Embedding Logger and Input
// Processor, copying MiniBatch assembly (Pack), and the materialized
// step loop (SparseGrad per table per step, separate optimizer pass)
// feeding the training epoch. The "flat" measurements run the current
// layer: one contiguous
// FlatDataset per class (PackFlat's Gather) viewed zero-copy by BatchViews,
// with streaming logger/classifier passes and the trainer-style
// allocation-free fused step (prebuilt apply functor, cached dense params).
//
// Every stage is also checked for bit-exact agreement — the determinism
// contract says the layout rework changes speed, never results.
//
// Usage:
//   pipeline_throughput [--out=BENCH_pipeline.json] [--inputs=24000]
//                       [--batch=128] [--epochs=2] [--reps=3] [--smoke]
//
// --smoke shrinks the workload so the whole suite runs in well under a
// second; ctest's bench_pipeline_smoke target uses it (see EXPERIMENTS.md).
//
// The headline number this PR is gated on — the epoch's layout-dependent
// work (logger + classification + pack, i.e. everything a training run's
// data path does besides the math kernels), single-thread, seed layout vs
// flat layout — is surfaced as the top-level field
// "criterion_epoch_setup_speedup". The with-math epoch is measured and
// bit-exactness-checked too ("end_to_end_epoch"); its speedup is reported
// but not gated, because the math kernels are shared by both layouts (and
// bit-exact by construction), so at any model size they only dilute the
// layout comparison.

#include <sys/resource.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/embedding_classifier.h"
#include "core/embedding_logger.h"
#include "core/input_processor.h"
#include "data/batch_view.h"
#include "data/dataset.h"
#include "data/minibatch.h"
#include "embedding/sparse_sgd.h"
#include "models/factory.h"
#include "stats/access_profile.h"
#include "tensor/sgd.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace fae {
namespace {

// ---------------------------------------------------------------------------
// Seed implementations (the pre-flat AoS data layer), kept here as the
// measurement baseline. Do not "improve" these: their value is being what
// the repo shipped before the layout rework.
// ---------------------------------------------------------------------------

/// Seed Embedding Logger: per-sample nested-vector walk (embedding_logger.cc
/// before the flat rework).
AccessProfile SeedProfile(const DatasetSchema& schema,
                          const std::vector<SparseInput>& samples,
                          uint64_t* num_lookups) {
  AccessProfile profile(schema.table_rows);
  *num_lookups = 0;
  for (const SparseInput& s : samples) {
    for (size_t t = 0; t < s.indices.size(); ++t) {
      for (uint32_t row : s.indices[t]) {
        profile.Record(t, row);
        ++*num_lookups;
      }
    }
  }
  return profile;
}

/// Seed Input Processor classification: the serial inner loop of the
/// pre-flat Classify (input_processor.cc before the rework).
void SeedClassify(const std::vector<SparseInput>& samples,
                  const HotSet& hot_set, std::vector<uint64_t>* hot_ids,
                  std::vector<uint64_t>* cold_ids) {
  hot_ids->clear();
  cold_ids->clear();
  for (size_t i = 0; i < samples.size(); ++i) {
    const SparseInput& s = samples[i];
    bool hot = true;
    for (size_t t = 0; t < s.indices.size() && hot; ++t) {
      for (uint32_t row : s.indices[t]) {
        if (!hot_set.IsHot(t, row)) {
          hot = false;
          break;
        }
      }
    }
    (hot ? hot_ids : cold_ids)->push_back(i);
  }
}

/// Seed copying batch assembly (minibatch.cc before the rework), reading
/// the AoS sample store.
MiniBatch SeedAssembleBatch(const DatasetSchema& schema,
                            const std::vector<SparseInput>& samples,
                            std::span<const uint64_t> sample_ids, bool hot) {
  const size_t b = sample_ids.size();
  MiniBatch batch;
  batch.hot = hot;
  batch.dense = Tensor(b, schema.num_dense);
  batch.indices.resize(schema.num_tables());
  batch.offsets.assign(schema.num_tables(), std::vector<uint32_t>(1, 0));
  batch.labels.resize(b);
  for (size_t i = 0; i < b; ++i) {
    const SparseInput& s = samples[sample_ids[i]];
    std::copy(s.dense.begin(), s.dense.end(), batch.dense.row(i));
    batch.labels[i] = s.label;
    for (size_t t = 0; t < schema.num_tables(); ++t) {
      auto& idx = batch.indices[t];
      idx.insert(idx.end(), s.indices[t].begin(), s.indices[t].end());
      batch.offsets[t].push_back(static_cast<uint32_t>(idx.size()));
    }
  }
  return batch;
}

std::vector<MiniBatch> SeedAssembleBatches(
    const DatasetSchema& schema, const std::vector<SparseInput>& samples,
    const std::vector<uint64_t>& sample_ids, size_t batch_size, bool hot) {
  std::vector<MiniBatch> out;
  for (size_t begin = 0; begin < sample_ids.size(); begin += batch_size) {
    const size_t end = std::min(sample_ids.size(), begin + batch_size);
    out.push_back(SeedAssembleBatch(
        schema, samples,
        std::span<const uint64_t>(sample_ids).subspan(begin, end - begin),
        hot));
  }
  return out;
}

/// Seed Pack: Fisher-Yates within each class (same RNG sequence as the
/// current Pack/PackFlat), then copying assembly.
struct SeedPacked {
  std::vector<MiniBatch> hot;
  std::vector<MiniBatch> cold;
};
SeedPacked SeedPack(const DatasetSchema& schema,
                    const std::vector<SparseInput>& samples,
                    const std::vector<uint64_t>& hot_ids,
                    const std::vector<uint64_t>& cold_ids, size_t batch_size,
                    uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<uint64_t> hot = hot_ids;
  std::vector<uint64_t> cold = cold_ids;
  for (size_t i = hot.size(); i > 1; --i) {
    std::swap(hot[i - 1], hot[rng.NextBounded(i)]);
  }
  for (size_t i = cold.size(); i > 1; --i) {
    std::swap(cold[i - 1], cold[rng.NextBounded(i)]);
  }
  SeedPacked packed;
  packed.hot = SeedAssembleBatches(schema, samples, hot, batch_size, true);
  packed.cold = SeedAssembleBatches(schema, samples, cold, batch_size, false);
  return packed;
}

/// Seed per-step math (the step loop the repo started with, trainer.cc at
/// PR1): materialize every table's SparseGrad, then take a separate
/// optimizer pass over it — plus a fresh DenseParams() vector per step.
/// Bit-exact with the fused step (same per-row accumulation order, same
/// update arithmetic; pinned by FlatEquivalenceTest).
void SeedMathStep(RecModel& model, const BatchView& view,
                  std::vector<EmbeddingTable*>& tables, SparseSgd& sparse_sgd,
                  Sgd& dense_sgd, double* loss_sum) {
  StepResult step = model.ForwardBackwardOn(view, tables);
  dense_sgd.Step(model.DenseParams());
  for (size_t t = 0; t < step.table_grads.size(); ++t) {
    if (step.table_grads[t].empty()) continue;
    sparse_sgd.Step(*tables[t], step.table_grads[t]);
  }
  *loss_sum += step.loss;
}

// ---------------------------------------------------------------------------
// Flat epoch runner: mirrors the trainer's allocation-free steady state
// (prebuilt single-pointer apply functor, cached dense params).
// ---------------------------------------------------------------------------

class FlatStepper {
 public:
  FlatStepper(RecModel& model, float lr)
      : model_(model), dense_sgd_(lr), sparse_sgd_(lr) {
    for (EmbeddingTable& t : model.tables()) tables_.push_back(&t);
    dense_params_ = model.DenseParams();
    ctx_.sgd = &sparse_sgd_;
    ctx_.tables = &tables_;
    apply_ = [c = &ctx_](size_t t, const Tensor& grad_out,
                         std::span<const uint32_t> indices,
                         std::span<const uint32_t> offsets) {
      c->sgd->FusedBackwardStep(*(*c->tables)[t], grad_out, indices, offsets,
                                nullptr);
    };
  }

  void Step(const BatchView& view, double* loss_sum) {
    StepResult step = model_.ForwardBackwardFusedOn(view, tables_, apply_);
    dense_sgd_.Step(dense_params_);
    *loss_sum += step.loss;
  }

 private:
  struct Ctx {
    SparseSgd* sgd;
    std::vector<EmbeddingTable*>* tables;
  };
  RecModel& model_;
  Sgd dense_sgd_;
  SparseSgd sparse_sgd_;
  std::vector<EmbeddingTable*> tables_;
  std::vector<Parameter*> dense_params_;
  Ctx ctx_;
  SparseApplyFn apply_;
};

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

struct StageResult {
  std::string stage;
  std::string impl;  // seed | flat
  double seconds = 0.0;
  double samples_per_sec = 0.0;
  double speedup_vs_seed = 1.0;
  bool bitexact_vs_seed = true;
};

template <typename Fn>
double MinSeconds(Fn&& fn, int reps) {
  fn();  // warm caches and the allocator
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    fn();
    best = std::min(best, sw.ElapsedSeconds());
  }
  return best;
}

double PeakRssMb() {
  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // KiB on Linux
}

/// Resident bytes of the AoS sample store: struct + every nested vector's
/// heap block (what the seed layout actually holds in memory).
size_t AosBytes(const std::vector<SparseInput>& samples) {
  size_t bytes = samples.capacity() * sizeof(SparseInput);
  for (const SparseInput& s : samples) {
    bytes += s.dense.capacity() * sizeof(float);
    bytes += s.indices.capacity() * sizeof(std::vector<uint32_t>);
    for (const auto& v : s.indices) bytes += v.capacity() * sizeof(uint32_t);
  }
  return bytes;
}

size_t FlatBytes(const FlatDataset& flat) {
  size_t bytes = flat.dense_data().size() * sizeof(float) +
                 flat.labels().size() * sizeof(float);
  for (size_t t = 0; t < flat.schema().num_tables(); ++t) {
    bytes += flat.indices(t).size() * sizeof(uint32_t) +
             flat.offsets(t).size() * sizeof(uint32_t);
  }
  return bytes;
}

bool ProfilesEqual(const AccessProfile& a, const AccessProfile& b) {
  if (a.num_tables() != b.num_tables()) return false;
  for (size_t t = 0; t < a.num_tables(); ++t) {
    if (a.counts(t) != b.counts(t)) return false;
  }
  return true;
}

/// A view must describe exactly the batch the copying path assembled
/// (offsets compared after rebasing on the view's base — see DESIGN.md §10).
bool ViewMatchesBatch(const BatchView& view, const MiniBatch& batch) {
  if (view.batch_size() != batch.batch_size()) return false;
  if (view.hot != batch.hot) return false;
  for (size_t i = 0; i < view.batch_size(); ++i) {
    if (view.labels[i] != batch.labels[i]) return false;
    for (size_t d = 0; d < view.dense.cols; ++d) {
      if (view.dense(i, d) != batch.dense(i, d)) return false;
    }
  }
  for (size_t t = 0; t < view.num_tables(); ++t) {
    const std::span<const uint32_t> vi = view.indices(t);
    if (vi.size() != batch.indices[t].size()) return false;
    for (size_t k = 0; k < vi.size(); ++k) {
      if (vi[k] != batch.indices[t][k]) return false;
    }
    const std::span<const uint32_t> vo = view.offsets(t);
    if (vo.size() != batch.offsets[t].size()) return false;
    const uint32_t base = vo.front();
    for (size_t k = 0; k < vo.size(); ++k) {
      if (vo[k] - base != batch.offsets[t][k]) return false;
    }
  }
  return true;
}

bool TablesEqual(const RecModel& a, const RecModel& b) {
  for (size_t t = 0; t < a.tables().size(); ++t) {
    if (a.tables()[t].raw() != b.tables()[t].raw()) return false;
  }
  return true;
}

struct SuiteConfig {
  size_t num_inputs = 24000;
  size_t batch = 128;
  size_t epochs = 2;
  int reps = 3;
  uint64_t pack_seed = 17;
  float lr = 0.05f;
};

void WriteJson(const std::string& path, const SuiteConfig& cfg,
               const std::vector<StageResult>& results, double criterion,
               double epoch_with_math_speedup, size_t aos_bytes,
               size_t flat_bytes, bool all_bitexact) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(2);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"suite\": \"pipeline_throughput\",\n");
  std::fprintf(f, "  \"workload\": \"kaggle_dlrm\",\n");
  std::fprintf(f, "  \"num_inputs\": %zu,\n", cfg.num_inputs);
  std::fprintf(f, "  \"batch\": %zu,\n", cfg.batch);
  std::fprintf(f, "  \"epochs\": %zu,\n", cfg.epochs);
  std::fprintf(f, "  \"aos_bytes\": %zu,\n", aos_bytes);
  std::fprintf(f, "  \"flat_bytes\": %zu,\n", flat_bytes);
  std::fprintf(f, "  \"peak_rss_mb\": %.1f,\n", PeakRssMb());
  std::fprintf(f, "  \"all_bitexact\": %s,\n", all_bitexact ? "true" : "false");
  std::fprintf(f,
               "  \"criterion_definition\": \"epoch_setup = logger + "
               "classification + pack, the epoch's layout-dependent work; "
               "the math kernels are shared by both layouts and bit-exact, "
               "so end_to_end_epoch (with math) is reported but not "
               "gated\",\n");
  std::fprintf(f, "  \"criterion_epoch_setup_speedup\": %.3f,\n", criterion);
  std::fprintf(f, "  \"epoch_with_math_speedup\": %.3f,\n",
               epoch_with_math_speedup);
  std::fprintf(f, "  \"stages\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const StageResult& r = results[i];
    std::fprintf(f,
                 "    {\"stage\": \"%s\", \"impl\": \"%s\", "
                 "\"seconds\": %.9f, \"samples_per_sec\": %.1f, "
                 "\"speedup_vs_seed\": %.3f, \"bitexact_vs_seed\": %s}%s\n",
                 r.stage.c_str(), r.impl.c_str(), r.seconds, r.samples_per_sec,
                 r.speedup_vs_seed, r.bitexact_vs_seed ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

void AddPair(std::vector<StageResult>& results, const std::string& stage,
             double seed_sec, double flat_sec, size_t samples, size_t passes,
             bool bitexact) {
  const double n = static_cast<double>(samples * passes);
  results.push_back({stage, "seed", seed_sec, n / seed_sec, 1.0, true});
  results.push_back(
      {stage, "flat", flat_sec, n / flat_sec, seed_sec / flat_sec, bitexact});
}

int Run(int argc, char** argv) {
  bench::Args args(argc, argv);
  SuiteConfig cfg;
  const bool smoke = args.GetBool("smoke", false);
  if (smoke) {
    cfg.num_inputs = 512;
    cfg.batch = 32;
    cfg.epochs = 1;
    cfg.reps = 1;
  }
  cfg.num_inputs =
      static_cast<size_t>(args.GetNonNegativeInt("inputs", (long)cfg.num_inputs));
  cfg.batch = static_cast<size_t>(args.GetPositiveInt("batch", (long)cfg.batch));
  cfg.epochs = static_cast<size_t>(args.GetPositiveInt("epochs", (long)cfg.epochs));
  cfg.reps = static_cast<int>(args.GetPositiveInt("reps", cfg.reps));

  bench::PrintHeader(
      "Data-pipeline throughput: seed AoS layout vs flat SoA layout");
  std::printf("inputs=%zu batch=%zu epochs=%zu reps=%d\n", cfg.num_inputs,
              cfg.batch, cfg.epochs, cfg.reps);

  const Dataset dataset = bench::MakeWorkloadDataset(
      WorkloadKind::kKaggleDlrm, DatasetScale::kTiny, cfg.num_inputs);
  const DatasetSchema& schema = dataset.schema();
  std::vector<uint64_t> all_ids(dataset.size());
  for (size_t i = 0; i < all_ids.size(); ++i) all_ids[i] = i;

  // The seed layout, materialized once (what the repo used to keep in
  // memory as the dataset itself).
  std::vector<SparseInput> aos;
  aos.reserve(dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) aos.push_back(dataset.sample(i));
  const size_t aos_bytes = AosBytes(aos);
  const size_t flat_bytes = FlatBytes(dataset.flat());

  std::vector<StageResult> results;
  bool all_bitexact = true;

  // --- Stage 1: Embedding Logger pass -----------------------------------
  uint64_t seed_lookups = 0;
  const double logger_seed = MinSeconds(
      [&] { SeedProfile(schema, aos, &seed_lookups); }, cfg.reps);
  const double logger_flat = MinSeconds(
      [&] { EmbeddingLogger::Profile(dataset, all_ids); }, cfg.reps);
  const AccessProfile seed_profile = SeedProfile(schema, aos, &seed_lookups);
  const EmbeddingLogger::Result flat_log =
      EmbeddingLogger::Profile(dataset, all_ids);
  const bool logger_ok = ProfilesEqual(seed_profile, flat_log.profile) &&
                         seed_lookups == flat_log.num_lookups;
  all_bitexact &= logger_ok;
  AddPair(results, "logger", logger_seed, logger_flat, dataset.size(), 1,
          logger_ok);

  // --- Stage 2: Input Processor classification --------------------------
  const uint64_t h_zt = std::max<uint64_t>(2, cfg.num_inputs / 1000);
  const HotSet hot_set = EmbeddingClassifier::Classify(
      flat_log.profile, schema, h_zt,
      bench::LargeTableCutoff(DatasetScale::kTiny));
  std::vector<uint64_t> seed_hot, seed_cold;
  const double classify_seed = MinSeconds(
      [&] { SeedClassify(aos, hot_set, &seed_hot, &seed_cold); }, cfg.reps);
  const InputProcessor processor(1);
  const double classify_flat = MinSeconds(
      [&] { processor.Classify(dataset, hot_set, all_ids); }, cfg.reps);
  const ProcessedInputs inputs = processor.Classify(dataset, hot_set, all_ids);
  const bool classify_ok =
      seed_hot == inputs.hot_ids && seed_cold == inputs.cold_ids;
  all_bitexact &= classify_ok;
  std::printf("hot fraction: %.2f (h_zt=%llu)\n", inputs.HotFraction(),
              static_cast<unsigned long long>(h_zt));
  AddPair(results, "classify", classify_seed, classify_flat, dataset.size(), 1,
          classify_ok);

  // --- Stage 3: batch assembly (Pack: shuffle + pure batches) -----------
  const double pack_seed_sec = MinSeconds(
      [&] {
        SeedPack(schema, aos, inputs.hot_ids, inputs.cold_ids, cfg.batch,
                 cfg.pack_seed);
      },
      cfg.reps);
  const double pack_flat_sec = MinSeconds(
      [&] {
        InputProcessor::PackedFlat p =
            InputProcessor::PackFlat(dataset, inputs, cfg.pack_seed);
        MakeBatchViews(p.hot, cfg.batch, true);
        MakeBatchViews(p.cold, cfg.batch, false);
      },
      cfg.reps);
  const SeedPacked seed_packed = SeedPack(schema, aos, inputs.hot_ids,
                                          inputs.cold_ids, cfg.batch,
                                          cfg.pack_seed);
  const InputProcessor::PackedFlat flat_packed =
      InputProcessor::PackFlat(dataset, inputs, cfg.pack_seed);
  const std::vector<BatchView> hot_views =
      MakeBatchViews(flat_packed.hot, cfg.batch, true);
  const std::vector<BatchView> cold_views =
      MakeBatchViews(flat_packed.cold, cfg.batch, false);
  bool pack_ok = hot_views.size() == seed_packed.hot.size() &&
                 cold_views.size() == seed_packed.cold.size();
  for (size_t b = 0; pack_ok && b < hot_views.size(); ++b) {
    pack_ok = ViewMatchesBatch(hot_views[b], seed_packed.hot[b]);
  }
  for (size_t b = 0; pack_ok && b < cold_views.size(); ++b) {
    pack_ok = ViewMatchesBatch(cold_views[b], seed_packed.cold[b]);
  }
  all_bitexact &= pack_ok;
  AddPair(results, "pack", pack_seed_sec, pack_flat_sec, dataset.size(), 1,
          pack_ok);

  // --- Stage 4: epoch setup (logger + classify + pack, combined) --------
  // The epoch's layout-dependent work, timed as one sequence — the number
  // the PR criterion gates on.
  const double setup_seed_sec = MinSeconds(
      [&] {
        uint64_t lookups = 0;
        const AccessProfile profile = SeedProfile(schema, aos, &lookups);
        const HotSet hs = EmbeddingClassifier::Classify(
            profile, schema, h_zt,
            bench::LargeTableCutoff(DatasetScale::kTiny));
        std::vector<uint64_t> hot_ids, cold_ids;
        SeedClassify(aos, hs, &hot_ids, &cold_ids);
        SeedPack(schema, aos, hot_ids, cold_ids, cfg.batch, cfg.pack_seed);
      },
      cfg.reps);
  const double setup_flat_sec = MinSeconds(
      [&] {
        const EmbeddingLogger::Result log =
            EmbeddingLogger::Profile(dataset, all_ids);
        const HotSet hs = EmbeddingClassifier::Classify(
            log.profile, schema, h_zt,
            bench::LargeTableCutoff(DatasetScale::kTiny));
        const ProcessedInputs in = processor.Classify(dataset, hs, all_ids);
        const InputProcessor::PackedFlat packed =
            InputProcessor::PackFlat(dataset, in, cfg.pack_seed);
        MakeBatchViews(packed.hot, cfg.batch, true);
        MakeBatchViews(packed.cold, cfg.batch, false);
      },
      cfg.reps);
  const bool setup_ok = logger_ok && classify_ok && pack_ok;
  AddPair(results, "epoch_setup", setup_seed_sec, setup_flat_sec,
          dataset.size(), 1, setup_ok);
  const double criterion = setup_seed_sec / setup_flat_sec;

  // --- Stage 5: end-to-end epoch ----------------------------------------
  // Logger + classification + pack + `epochs` full passes of fused
  // training steps, the whole per-run data pipeline. Seed side pays AoS
  // walks, copying assembly, and the per-step closure/params churn the old
  // trainer had; flat side is the current streaming + zero-copy +
  // allocation-free path.
  std::unique_ptr<RecModel> seed_model =
      MakeModel(schema, /*full_size=*/false, /*seed=*/7);
  std::unique_ptr<RecModel> flat_model =
      MakeModel(schema, /*full_size=*/false, /*seed=*/7);

  auto seed_epoch = [&](RecModel& model, double* loss_sum) {
    uint64_t lookups = 0;
    const AccessProfile profile = SeedProfile(schema, aos, &lookups);
    const HotSet hs = EmbeddingClassifier::Classify(
        profile, schema, h_zt, bench::LargeTableCutoff(DatasetScale::kTiny));
    std::vector<uint64_t> hot_ids, cold_ids;
    SeedClassify(aos, hs, &hot_ids, &cold_ids);
    const SeedPacked packed =
        SeedPack(schema, aos, hot_ids, cold_ids, cfg.batch, cfg.pack_seed);
    std::vector<EmbeddingTable*> tables;
    for (EmbeddingTable& t : model.tables()) tables.push_back(&t);
    Sgd dense_sgd(cfg.lr);
    SparseSgd sparse_sgd(cfg.lr);
    for (size_t e = 0; e < cfg.epochs; ++e) {
      for (const MiniBatch& mb : packed.hot) {
        SeedMathStep(model, BatchView(mb), tables, sparse_sgd, dense_sgd,
                     loss_sum);
      }
      for (const MiniBatch& mb : packed.cold) {
        SeedMathStep(model, BatchView(mb), tables, sparse_sgd, dense_sgd,
                     loss_sum);
      }
    }
  };
  auto flat_epoch = [&](RecModel& model, double* loss_sum) {
    const EmbeddingLogger::Result log =
        EmbeddingLogger::Profile(dataset, all_ids);
    const HotSet hs = EmbeddingClassifier::Classify(
        log.profile, schema, h_zt,
        bench::LargeTableCutoff(DatasetScale::kTiny));
    const ProcessedInputs in = processor.Classify(dataset, hs, all_ids);
    const InputProcessor::PackedFlat packed =
        InputProcessor::PackFlat(dataset, in, cfg.pack_seed);
    const std::vector<BatchView> hot =
        MakeBatchViews(packed.hot, cfg.batch, true);
    const std::vector<BatchView> cold =
        MakeBatchViews(packed.cold, cfg.batch, false);
    FlatStepper stepper(model, cfg.lr);
    for (size_t e = 0; e < cfg.epochs; ++e) {
      for (const BatchView& v : hot) stepper.Step(v, loss_sum);
      for (const BatchView& v : cold) stepper.Step(v, loss_sum);
    }
  };

  // Bit-exactness first, from identically initialized twins (untimed).
  double seed_loss = 0.0, flat_loss = 0.0;
  seed_epoch(*seed_model, &seed_loss);
  flat_epoch(*flat_model, &flat_loss);
  const bool epoch_ok =
      seed_loss == flat_loss && TablesEqual(*seed_model, *flat_model);
  all_bitexact &= epoch_ok;

  // Then throughput (model state keeps evolving across reps; the work per
  // rep is constant).
  double sink = 0.0;
  const double epoch_seed_sec =
      MinSeconds([&] { seed_epoch(*seed_model, &sink); }, cfg.reps);
  const double epoch_flat_sec =
      MinSeconds([&] { flat_epoch(*flat_model, &sink); }, cfg.reps);
  AddPair(results, "end_to_end_epoch", epoch_seed_sec, epoch_flat_sec,
          dataset.size(), cfg.epochs, epoch_ok);
  const double epoch_with_math_speedup = epoch_seed_sec / epoch_flat_sec;

  std::printf("\n%-18s %-5s %12s %14s %9s %9s\n", "stage", "impl", "seconds",
              "samples/sec", "speedup", "bitexact");
  for (const StageResult& r : results) {
    std::printf("%-18s %-5s %12.6f %14.1f %8.2fx %9s\n", r.stage.c_str(),
                r.impl.c_str(), r.seconds, r.samples_per_sec,
                r.speedup_vs_seed, r.bitexact_vs_seed ? "yes" : "NO");
  }
  std::printf("\naos_bytes=%zu flat_bytes=%zu (%.2fx smaller)\n", aos_bytes,
              flat_bytes,
              static_cast<double>(aos_bytes) /
                  static_cast<double>(flat_bytes));
  std::printf(
      "criterion_epoch_setup_speedup=%.3f (gate: >= 2.0 full mode)\n"
      "epoch_with_math_speedup=%.3f (reported, not gated: math kernels are "
      "shared and bit-exact)\n",
      criterion, epoch_with_math_speedup);

  const std::string out = args.GetString("out", "BENCH_pipeline.json");
  WriteJson(out, cfg, results, criterion, epoch_with_math_speedup, aos_bytes,
            flat_bytes, all_bitexact);
  std::printf("wrote %s\n", out.c_str());

  if (!all_bitexact) {
    std::fprintf(stderr, "FAIL: flat path disagrees with seed layout\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace fae

int main(int argc, char** argv) { return fae::Run(argc, argv); }
