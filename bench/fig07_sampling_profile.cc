// Reproduces Fig 7: the access profile of a large embedding table from the
// full input set vs a 5% random sample.
//
// Paper shape: the sampled profile has the same signature as the full one
// (FAE relies on this to calibrate from a 5% sample).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/embedding_logger.h"
#include "stats/histogram.h"
#include "stats/sampling.h"
#include "util/random.h"

namespace fae {
namespace {

void Run(const bench::Args& args) {
  const DatasetScale scale =
      bench::ParseScale(args.GetString("scale", "small"));
  const size_t inputs = args.GetNonNegativeInt("inputs", 0);
  const double rate = args.GetDouble("rate", 0.05);

  bench::PrintHeader("Fig 7: access profile, full dataset vs sampled");
  for (WorkloadKind kind : bench::AllWorkloads()) {
    Dataset dataset = bench::MakeWorkloadDataset(kind, scale, inputs);
    std::vector<uint64_t> all_ids(dataset.size());
    for (size_t i = 0; i < all_ids.size(); ++i) all_ids[i] = i;
    Xoshiro256 rng(7);
    std::vector<uint64_t> sampled_ids =
        BernoulliSampleIndices(dataset.size(), rate, rng);

    AccessProfile full = EmbeddingLogger::Profile(dataset, all_ids).profile;
    AccessProfile sampled =
        EmbeddingLogger::Profile(dataset, sampled_ids).profile;

    // Largest table's profile, as in the paper's figure. Sampled counts
    // are rescaled by 1/rate so the two histograms are comparable.
    Histogram hf = full.CountHistogram(0);
    Histogram hs;
    for (uint64_t c : sampled.counts(0)) {
      hs.Add(static_cast<uint64_t>(static_cast<double>(c) / rate + 0.5));
    }
    const double distance = Histogram::ShapeDistance(hf, hs);

    std::printf("\n%s: %zu inputs, %zu sampled (%.1f%%)\n",
                std::string(WorkloadName(kind)).c_str(), dataset.size(),
                sampled_ids.size(), 100.0 * rate);
    std::printf("  top-share comparison (largest table):\n");
    for (double frac : {0.01, 0.05, 0.10, 0.25}) {
      std::printf("    top %5.1f%%: full %6.2f%%  sampled %6.2f%%\n",
                  100 * frac, 100 * full.TopShare(0, frac),
                  100 * sampled.TopShare(0, frac));
    }
    std::printf("  histogram shape distance (0=identical, 2=disjoint): %.3f\n",
                distance);
  }
  std::printf(
      "\nPaper reference: randomly sampling even 5%% of the dataset gives a\n"
      "similar access signature as the entire dataset.\n");
}

}  // namespace
}  // namespace fae

int main(int argc, char** argv) {
  fae::bench::Args args(argc, argv);
  fae::Run(args);
  return 0;
}
