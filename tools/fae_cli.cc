// fae — command-line frontend for the FAE library.
//
//   fae generate    --out=data.faed [--workload=kaggle|taobao|terabyte]
//                   [--scale=tiny|small|medium] [--inputs=N] [--seed=S]
//                   [--zipf=1.15]
//   fae inspect     --data=data.faed
//   fae preprocess  --data=data.faed --out=plan.faef [--budget-kb=384]
//                   [--sample-rate=0.05] [--cutoff-kb=4]
//   fae train       --data=data.faed [--plan=plan.faef]
//                   [--mode=baseline|fae|nvopt|model-parallel|cache]
//                   [--gpus=4] [--batch=1024] [--epochs=1] [--cost-only]
//                   [--threads=1] [--dirty-sync] [--full-model]
//                   [--pipeline=off|prefetch|overlap] [--pipeline-depth=2]
//                   [--ckpt=run.faec] [--ckpt-every=100] [--resume]
//                   [--fault-plan=device@30,stall@50:0.2,corrupt@75,crash@120]
//
// The `generate -> preprocess -> train` flow mirrors the paper's once-per-
// dataset static pass followed by repeated training runs.

#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "core/fae_format.h"
#include "data/dataset_io.h"
#include "data/synthetic.h"
#include "engine/trainer.h"
#include "models/factory.h"
#include "util/string_util.h"

namespace fae {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: fae <generate|inspect|preprocess|train> [--flags]\n"
               "see the header of tools/fae_cli.cc for the full flag list\n");
  return 2;
}

WorkloadKind ParseWorkload(const std::string& name) {
  if (name == "taobao") return WorkloadKind::kTaobaoTbsm;
  if (name == "terabyte") return WorkloadKind::kTerabyteDlrm;
  return WorkloadKind::kKaggleDlrm;
}

int Generate(const bench::Args& args) {
  const std::string out = args.GetString("out", "");
  if (out.empty()) return Usage();
  const WorkloadKind kind = ParseWorkload(args.GetString("workload", "kaggle"));
  const DatasetScale scale = bench::ParseScale(args.GetString("scale", "tiny"));
  const size_t inputs = args.GetInt(
      "inputs", static_cast<long>(DefaultNumInputs(kind, scale)));

  SyntheticOptions options;
  options.seed = args.GetInt("seed", 42);
  options.zipf_exponent = args.GetDouble("zipf", options.zipf_exponent);
  SyntheticGenerator generator(MakeSchema(kind, scale), options);
  Dataset dataset = generator.Generate(inputs);
  const Status status = DatasetIo::Save(out, dataset);
  if (!status.ok()) return Fail(status);
  std::printf("wrote %zu inputs (%s, %s embeddings) to %s\n", dataset.size(),
              std::string(WorkloadName(kind)).c_str(),
              HumanBytes(dataset.schema().TotalEmbeddingBytes()).c_str(),
              out.c_str());
  return 0;
}

int Inspect(const bench::Args& args) {
  const std::string path = args.GetString("data", "");
  if (path.empty()) return Usage();
  auto dataset = DatasetIo::Load(path);
  if (!dataset.ok()) return Fail(dataset.status());
  const DatasetSchema& s = dataset->schema();
  std::printf("%s: %zu inputs\n", path.c_str(), dataset->size());
  std::printf("  workload:   %s\n", std::string(WorkloadName(s.kind)).c_str());
  std::printf("  dense:      %zu features\n", s.num_dense);
  std::printf("  tables:     %zu (dim %zu, %s total)\n", s.num_tables(),
              s.embedding_dim, HumanBytes(s.TotalEmbeddingBytes()).c_str());
  if (s.sequential) {
    std::printf("  sequences:  histories up to %zu items\n", s.max_history);
  }
  AccessProfile profile = dataset->ProfileAllAccesses();
  std::printf("  skew:       largest table top-1%% share %.1f%%, top-10%% "
              "share %.1f%%\n",
              100 * profile.TopShare(0, 0.01),
              100 * profile.TopShare(0, 0.10));
  return 0;
}

int Preprocess(const bench::Args& args) {
  const std::string data_path = args.GetString("data", "");
  const std::string out = args.GetString("out", "");
  if (data_path.empty() || out.empty()) return Usage();
  auto dataset = DatasetIo::Load(data_path);
  if (!dataset.ok()) return Fail(dataset.status());

  FaeConfig config;
  config.sample_rate = args.GetDouble("sample-rate", 0.05);
  config.gpu_memory_budget = args.GetInt("budget-kb", 384) * 1024ull;
  config.large_table_bytes = args.GetInt("cutoff-kb", 4) * 1024ull;

  std::vector<uint64_t> train_ids(dataset->size());
  for (size_t i = 0; i < train_ids.size(); ++i) train_ids[i] = i;
  FaePipeline pipeline(config);
  auto plan = pipeline.PrepareCached(*dataset, train_ids, out);
  if (!plan.ok()) return Fail(plan.status());
  std::printf("%s plan: threshold t=%.1e, hot slice %s, hot inputs %.1f%%\n",
              plan->from_cache ? "loaded" : "wrote", plan->threshold,
              HumanBytes(plan->hot_bytes).c_str(),
              100 * plan->inputs.HotFraction());
  return 0;
}

int Train(const bench::Args& args) {
  const std::string data_path = args.GetString("data", "");
  if (data_path.empty()) return Usage();
  auto dataset = DatasetIo::Load(data_path);
  if (!dataset.ok()) return Fail(dataset.status());
  Dataset::Split split = dataset->MakeSplit(args.GetDouble("test-frac", 0.1));

  TrainOptions options;
  options.per_gpu_batch = args.GetInt("batch", 1024);
  options.epochs = args.GetInt("epochs", 1);
  options.run_math = !args.GetBool("cost-only", false);
  options.num_threads = args.GetInt("threads", 1);
  options.sync_strategy = args.GetBool("dirty-sync", false)
                              ? SyncStrategy::kDirty
                              : SyncStrategy::kFull;
  const std::string pipeline = args.GetString("pipeline", "off");
  if (pipeline == "prefetch") {
    options.pipeline = PipelineMode::kPrefetch;
  } else if (pipeline == "overlap") {
    options.pipeline = PipelineMode::kOverlap;
  } else if (pipeline != "off") {
    std::fprintf(stderr, "error: unknown --pipeline mode '%s' "
                 "(expected off|prefetch|overlap)\n", pipeline.c_str());
    return 2;
  }
  const long pipeline_depth = args.GetInt("pipeline-depth", 2);
  if (pipeline_depth < 1) {
    std::fprintf(stderr, "error: --pipeline-depth must be >= 1\n");
    return 2;
  }
  options.pipeline_depth = static_cast<size_t>(pipeline_depth);
  options.checkpoint.path = args.GetString("ckpt", "");
  options.checkpoint.every_steps = args.GetInt("ckpt-every", 100);
  options.checkpoint.resume = args.GetBool("resume", false);

  FaultInjector injector;
  const std::string fault_plan = args.GetString("fault-plan", "");
  if (!fault_plan.empty()) {
    auto parsed = FaultInjector::Parse(fault_plan);
    if (!parsed.ok()) return Fail(parsed.status());
    injector = std::move(parsed).value();
    options.fault_injector = &injector;
  }
  const int gpus = static_cast<int>(args.GetInt("gpus", 4));
  SystemSpec system = MakePaperServer(gpus);

  FaeConfig config;
  config.sample_rate = args.GetDouble("sample-rate", 0.05);
  config.gpu_memory_budget = args.GetInt("budget-kb", 384) * 1024ull;
  config.large_table_bytes = args.GetInt("cutoff-kb", 4) * 1024ull;
  system.hot_embedding_budget = config.gpu_memory_budget;

  auto model = MakeModel(dataset->schema(),
                         args.GetBool("full-model", false), 7);
  Trainer trainer(model.get(), system, options);

  const std::string mode = args.GetString("mode", "fae");
  TrainReport report;
  if (mode == "baseline") {
    auto r = trainer.TrainBaselineResumable(*dataset, split);
    if (!r.ok()) return Fail(r.status());
    report = std::move(r).value();
  } else if (mode == "nvopt") {
    report = trainer.TrainNvOpt(*dataset, split);
  } else if (mode == "model-parallel") {
    auto r = trainer.TrainModelParallel(*dataset, split);
    if (!r.ok()) return Fail(r.status());
    report = std::move(r).value();
  } else if (mode == "fae" || mode == "cache") {
    FaePipeline pipeline(config);
    StatusOr<FaePlan> plan = [&]() -> StatusOr<FaePlan> {
      const std::string plan_path = args.GetString("plan", "");
      if (!plan_path.empty()) {
        return pipeline.PrepareCached(*dataset, split.train, plan_path);
      }
      return pipeline.Prepare(*dataset, split.train);
    }();
    if (!plan.ok()) return Fail(plan.status());
    if (mode == "cache") {
      report = trainer.TrainGpuCache(*dataset, split, *plan);
    } else {
      auto r = trainer.TrainFaeWithPlan(*dataset, split, config, *plan);
      if (!r.ok()) return Fail(r.status());
      report = std::move(r).value();
    }
  } else {
    return Usage();
  }

  std::printf("mode %s, %d GPU(s), %zu batches\n",
              std::string(TrainModeName(report.mode)).c_str(), gpus,
              report.num_batches);
  std::printf("modeled time: %s   per-GPU power: %.1fW\n",
              HumanSeconds(report.modeled_seconds).c_str(),
              report.avg_gpu_watts);
  if (options.pipeline != PipelineMode::kOff) {
    std::printf(
        "pipeline %s (depth %zu): staged %s of input, overlap hid %s "
        "(%.1f%% of the serial wall)\n",
        std::string(PipelineModeName(options.pipeline)).c_str(),
        options.pipeline_depth, HumanSeconds(report.prep_seconds).c_str(),
        HumanSeconds(report.overlap_saved_seconds).c_str(),
        100 * report.overlap_fraction);
  }
  if (options.run_math) {
    std::printf("train acc %.2f%%  test acc %.2f%%  test loss %.4f\n",
                100 * report.final_train_acc, 100 * report.final_test_acc,
                report.final_test_loss);
  }
  if (report.mode == TrainMode::kFae) {
    std::printf(
        "fae: hot inputs %.1f%%, %zu transitions, synced %s, final R(%.0f)\n",
        100 * report.hot_fraction, report.transitions,
        HumanBytes(report.sync_bytes).c_str(), report.final_rate);
  }
  if (report.resumed) {
    std::printf("resumed from %s at iteration %llu\n",
                options.checkpoint.path.c_str(),
                static_cast<unsigned long long>(report.resumed_at));
  }
  if (report.degraded) {
    std::printf(
        "degraded: hot slice over budget; demoted %llu rows, %llu inputs "
        "fell back to the cold path\n",
        static_cast<unsigned long long>(report.demoted_rows),
        static_cast<unsigned long long>(report.fallback_inputs));
  }
  if (options.fault_injector != nullptr) {
    const FaultStats& fs = report.faults;
    std::printf(
        "faults: %llu device (%llu retries), %llu stalls, %llu corrupt "
        "syncs, %llu crashes\n",
        static_cast<unsigned long long>(fs.device_faults),
        static_cast<unsigned long long>(fs.retries),
        static_cast<unsigned long long>(fs.link_stalls),
        static_cast<unsigned long long>(fs.corrupt_syncs),
        static_cast<unsigned long long>(fs.crashes));
  }
  if (report.interrupted) {
    std::printf(
        "run interrupted by an injected crash at iteration %zu; rerun with "
        "--resume to continue from the last checkpoint\n",
        report.num_batches);
  }
  std::printf("\nphase breakdown:\n%s", report.timeline.Report().c_str());
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  bench::Args args(argc, argv);
  if (command == "generate") return Generate(args);
  if (command == "inspect") return Inspect(args);
  if (command == "preprocess") return Preprocess(args);
  if (command == "train") return Train(args);
  return Usage();
}

}  // namespace
}  // namespace fae

int main(int argc, char** argv) { return fae::Run(argc, argv); }
