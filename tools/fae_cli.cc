// fae — command-line frontend for the FAE library.
//
//   fae generate    --out=data.faed [--workload=kaggle|taobao|terabyte]
//                   [--scale=tiny|small|medium] [--inputs=N] [--seed=S]
//                   [--zipf=1.15] [--drift=0.0]
//   fae inspect     --data=data.faed
//   fae preprocess  --data=data.faed --out=plan.faef [--budget-kb=384]
//                   [--sample-rate=0.05] [--cutoff-kb=4]
//   fae train       --data=data.faed [--plan=plan.faef]
//                   [--mode=baseline|fae|nvopt|model-parallel|cache]
//                   [--gpus=4] [--nodes=1] [--batch=1024] [--epochs=1]
//                   [--cost-only]
//                   [--sharding=replicate|lpt|statistical]
//                   [--threads=1] [--dirty-sync] [--full-model]
//                   [--pipeline=off|prefetch|overlap] [--pipeline-depth=2]
//                   [--cache=off|oracle] [--cache-budget-rows=4096]
//                   [--cache-lookahead=8] [--cold-precision=fp32|fp16|int8]
//                   [--stale-skip=off|cold|all] [--stale-threshold=T]
//                   [--stale-min-visits=8]
//                   [--ckpt=run.faec] [--ckpt-every=100] [--resume]
//                   [--fault-plan=device@30,stall@50:0.2,corrupt@75,crash@120]
//   fae serve       --data=data.faed [--plan=plan.faef] [--swap=swap.faef]
//                   [--batch=256] [--batches=N] [--slo=0.75]
//                   [--ema-alpha=0.05] [--recal-window=8192]
//                   [--recal-cooldown=32] [--deadline-ms=250]
//                   [--recal-retries=3] [--backoff-ms=10] [--no-train]
//                   [--cache=off|oracle] [--cache-budget-rows=4096]
//                   [--cache-lookahead=8] [--cold-precision=fp32|fp16|int8]
//                   [--threads=1] [--gpus=4] [--serve-config=serve.cfg]
//                   [--fault-plan=recal-stall@40:3,swap-crash@60,lookup-loss@80x2]
//
// The `generate -> preprocess -> train` flow mirrors the paper's once-per-
// dataset static pass followed by repeated training runs; `serve` replays
// the dataset as drifting online traffic against the preprocessed hot set
// (DESIGN.md §12).

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>

#include "bench/bench_util.h"
#include "core/fae_format.h"
#include "embedding/cold_precision.h"
#include "data/dataset_io.h"
#include "data/synthetic.h"
#include "engine/ring_limits.h"
#include "engine/trainer.h"
#include "models/factory.h"
#include "serve/serving_loop.h"
#include "util/string_util.h"

namespace fae {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: fae <generate|inspect|preprocess|train|serve> "
               "[--flags]\n"
               "see the header of tools/fae_cli.cc for the full flag list\n");
  return 2;
}

// Sentinel distinguishing an absent flag from one given an empty value
// ("--threads=" must be rejected, not silently defaulted).
constexpr const char kFlagAbsent[] = "\x01";

/// Strict integer flag parsing. Args::GetInt is atol-based, so
/// `--threads=x` or `--threads=-2` silently became a zero or negative
/// resource count; flags that size resources reject anything that is not
/// an integer >= `min_value` with an error naming the flag.
bool StrictLongFlag(const bench::Args& args, const char* key, long fallback,
                    long min_value, long* out) {
  const std::string raw = args.GetString(key, kFlagAbsent);
  if (raw == kFlagAbsent) {
    *out = fallback;
    return true;
  }
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(raw.c_str(), &end, 10);
  if (raw.empty() || errno != 0 || end != raw.c_str() + raw.size()) {
    std::fprintf(stderr, "error: --%s='%s' is not an integer\n", key,
                 raw.c_str());
    return false;
  }
  if (value < min_value) {
    std::fprintf(stderr, "error: --%s must be >= %ld (got %ld)\n", key,
                 min_value, value);
    return false;
  }
  *out = value;
  return true;
}

/// Strict floating-point flag parsing: the whole value must be a number.
/// Range checks stay with the consumer (ServeOptions::Validate), so the
/// file and flag construction paths reject the same garbage.
bool StrictDoubleFlag(const bench::Args& args, const char* key,
                      double fallback, double* out) {
  const std::string raw = args.GetString(key, kFlagAbsent);
  if (raw == kFlagAbsent) {
    *out = fallback;
    return true;
  }
  char* end = nullptr;
  const double value = std::strtod(raw.c_str(), &end);
  if (raw.empty() || end != raw.c_str() + raw.size()) {
    std::fprintf(stderr, "error: --%s='%s' is not a number\n", key,
                 raw.c_str());
    return false;
  }
  *out = value;
  return true;
}

/// Parses the --cache flag triple shared by `train` and `serve`. Bad input
/// prints an error and returns false. Depth bounds come from the same
/// ValidateRingDepth the staging ring uses (engine/ring_limits.h).
bool ParseCacheFlags(const bench::Args& args, CacheMode* mode,
                     size_t* budget_rows, size_t* lookahead) {
  const std::string cache = args.GetString("cache", "off");
  if (cache == "oracle") {
    *mode = CacheMode::kOracle;
  } else if (cache == "off") {
    *mode = CacheMode::kOff;
  } else {
    std::fprintf(stderr,
                 "error: unknown --cache mode '%s' (expected off|oracle)\n",
                 cache.c_str());
    return false;
  }
  long v = 0;
  if (!StrictLongFlag(args, "cache-budget-rows", 4096, 1, &v)) return false;
  *budget_rows = static_cast<size_t>(v);
  if (!StrictLongFlag(args, "cache-lookahead", 8, 1, &v)) return false;
  const StatusOr<size_t> depth = ValidateRingDepth(v, "--cache-lookahead");
  if (!depth.ok()) {
    std::fprintf(stderr, "error: %s\n", depth.status().ToString().c_str());
    return false;
  }
  *lookahead = *depth;
  return true;
}

/// Parses --cold-precision for `train` and `serve`. An unknown value is an
/// error naming the expected set, never a silent fp32 fallback.
bool ParseColdPrecisionFlag(const bench::Args& args, ColdPrecision* out) {
  const std::string raw = args.GetString("cold-precision", "fp32");
  if (!ParseColdPrecision(raw, out)) {
    std::fprintf(stderr,
                 "error: unknown --cold-precision '%s' (expected "
                 "fp32|fp16|int8)\n",
                 raw.c_str());
    return false;
  }
  return true;
}

/// Parses --sharding for `train`. An unknown value is an error naming the
/// expected set, never a silent replicate fallback.
bool ParseShardingFlag(const bench::Args& args, ShardingMode* out) {
  const std::string raw = args.GetString("sharding", "replicate");
  if (!ParseShardingMode(raw, out)) {
    std::fprintf(stderr,
                 "error: unknown --sharding '%s' (expected "
                 "replicate|lpt|statistical)\n",
                 raw.c_str());
    return false;
  }
  return true;
}

/// Parses the --stale-skip triple for `train`. An unknown mode is an
/// error; so is giving a tuning flag while skipping stays off — a
/// silently ignored threshold would look like a working experiment.
bool ParseStaleFlags(const bench::Args& args, StaleSkipMode* mode,
                     double* threshold, size_t* min_visits) {
  const std::string raw = args.GetString("stale-skip", "off");
  if (raw == "off") {
    *mode = StaleSkipMode::kOff;
  } else if (raw == "cold") {
    *mode = StaleSkipMode::kCold;
  } else if (raw == "all") {
    *mode = StaleSkipMode::kAll;
  } else {
    std::fprintf(stderr,
                 "error: unknown --stale-skip mode '%s' (expected "
                 "off|cold|all)\n",
                 raw.c_str());
    return false;
  }
  if (*mode == StaleSkipMode::kOff) {
    const bool threshold_given =
        args.GetString("stale-threshold", kFlagAbsent) != kFlagAbsent;
    const bool visits_given =
        args.GetString("stale-min-visits", kFlagAbsent) != kFlagAbsent;
    if (threshold_given || visits_given) {
      std::fprintf(stderr,
                   "error: --%s requires --stale-skip=cold or "
                   "--stale-skip=all (with skipping off it would be "
                   "silently ignored)\n",
                   threshold_given ? "stale-threshold" : "stale-min-visits");
      return false;
    }
  }
  double t = 0.0;
  if (!StrictDoubleFlag(args, "stale-threshold", 0.0, &t)) return false;
  if (t < 0.0) {
    std::fprintf(stderr, "error: --stale-threshold must be >= 0 (got %g)\n",
                 t);
    return false;
  }
  long v = 0;
  if (!StrictLongFlag(args, "stale-min-visits", 8, 1, &v)) return false;
  *threshold = t;
  *min_visits = static_cast<size_t>(v);
  return true;
}

WorkloadKind ParseWorkload(const std::string& name) {
  if (name == "taobao") return WorkloadKind::kTaobaoTbsm;
  if (name == "terabyte") return WorkloadKind::kTerabyteDlrm;
  return WorkloadKind::kKaggleDlrm;
}

int Generate(const bench::Args& args) {
  const std::string out = args.GetString("out", "");
  if (out.empty()) return Usage();
  const WorkloadKind kind = ParseWorkload(args.GetString("workload", "kaggle"));
  const DatasetScale scale = bench::ParseScale(args.GetString("scale", "tiny"));
  const size_t inputs = args.GetPositiveInt(
      "inputs", static_cast<long>(DefaultNumInputs(kind, scale)));

  SyntheticOptions options;
  options.seed = args.GetNonNegativeInt("seed", 42);
  options.zipf_exponent = args.GetDouble("zipf", options.zipf_exponent);
  if (!StrictDoubleFlag(args, "drift", options.popularity_drift,
                        &options.popularity_drift)) {
    return 2;
  }
  SyntheticGenerator generator(MakeSchema(kind, scale), options);
  Dataset dataset = generator.Generate(inputs);
  const Status status = DatasetIo::Save(out, dataset);
  if (!status.ok()) return Fail(status);
  std::printf("wrote %zu inputs (%s, %s embeddings) to %s\n", dataset.size(),
              std::string(WorkloadName(kind)).c_str(),
              HumanBytes(dataset.schema().TotalEmbeddingBytes()).c_str(),
              out.c_str());
  return 0;
}

int Inspect(const bench::Args& args) {
  const std::string path = args.GetString("data", "");
  if (path.empty()) return Usage();
  auto dataset = DatasetIo::Load(path);
  if (!dataset.ok()) return Fail(dataset.status());
  const DatasetSchema& s = dataset->schema();
  std::printf("%s: %zu inputs\n", path.c_str(), dataset->size());
  std::printf("  workload:   %s\n", std::string(WorkloadName(s.kind)).c_str());
  std::printf("  dense:      %zu features\n", s.num_dense);
  std::printf("  tables:     %zu (dim %zu, %s total)\n", s.num_tables(),
              s.embedding_dim, HumanBytes(s.TotalEmbeddingBytes()).c_str());
  if (s.sequential) {
    std::printf("  sequences:  histories up to %zu items\n", s.max_history);
  }
  AccessProfile profile = dataset->ProfileAllAccesses();
  std::printf("  skew:       largest table top-1%% share %.1f%%, top-10%% "
              "share %.1f%%\n",
              100 * profile.TopShare(0, 0.01),
              100 * profile.TopShare(0, 0.10));
  return 0;
}

int Preprocess(const bench::Args& args) {
  const std::string data_path = args.GetString("data", "");
  const std::string out = args.GetString("out", "");
  if (data_path.empty() || out.empty()) return Usage();
  auto dataset = DatasetIo::Load(data_path);
  if (!dataset.ok()) return Fail(dataset.status());

  FaeConfig config;
  config.sample_rate = args.GetDouble("sample-rate", 0.05);
  config.gpu_memory_budget = args.GetPositiveInt("budget-kb", 384) * 1024ull;
  config.large_table_bytes = args.GetPositiveInt("cutoff-kb", 4) * 1024ull;

  std::vector<uint64_t> train_ids(dataset->size());
  for (size_t i = 0; i < train_ids.size(); ++i) train_ids[i] = i;
  FaePipeline pipeline(config);
  auto plan = pipeline.PrepareCached(*dataset, train_ids, out);
  if (!plan.ok()) return Fail(plan.status());
  std::printf("%s plan: threshold t=%.1e, hot slice %s, hot inputs %.1f%%\n",
              plan->from_cache ? "loaded" : "wrote", plan->threshold,
              HumanBytes(plan->hot_bytes).c_str(),
              100 * plan->inputs.HotFraction());
  return 0;
}

int Train(const bench::Args& args) {
  const std::string data_path = args.GetString("data", "");
  if (data_path.empty()) return Usage();
  auto dataset = DatasetIo::Load(data_path);
  if (!dataset.ok()) return Fail(dataset.status());
  Dataset::Split split = dataset->MakeSplit(args.GetDouble("test-frac", 0.1));

  long batch = 0, epochs = 0, threads = 0;
  if (!StrictLongFlag(args, "batch", 1024, 1, &batch) ||
      !StrictLongFlag(args, "epochs", 1, 1, &epochs) ||
      !StrictLongFlag(args, "threads", 1, 1, &threads)) {
    return 2;
  }
  TrainOptions options;
  options.per_gpu_batch = static_cast<size_t>(batch);
  options.epochs = static_cast<size_t>(epochs);
  options.run_math = !args.GetBool("cost-only", false);
  options.num_threads = static_cast<size_t>(threads);
  options.sync_strategy = args.GetBool("dirty-sync", false)
                              ? SyncStrategy::kDirty
                              : SyncStrategy::kFull;
  const std::string pipeline = args.GetString("pipeline", "off");
  if (pipeline == "prefetch") {
    options.pipeline = PipelineMode::kPrefetch;
  } else if (pipeline == "overlap") {
    options.pipeline = PipelineMode::kOverlap;
  } else if (pipeline != "off") {
    std::fprintf(stderr, "error: unknown --pipeline mode '%s' "
                 "(expected off|prefetch|overlap)\n", pipeline.c_str());
    return 2;
  }
  long pipeline_depth = 0, ckpt_every = 0;
  if (!StrictLongFlag(args, "pipeline-depth", 2, 1, &pipeline_depth) ||
      !StrictLongFlag(args, "ckpt-every", 100, 1, &ckpt_every)) {
    return 2;
  }
  const StatusOr<size_t> depth =
      ValidateRingDepth(pipeline_depth, "--pipeline-depth");
  if (!depth.ok()) return Fail(depth.status());
  options.pipeline_depth = *depth;
  if (!ParseCacheFlags(args, &options.cache, &options.cache_budget_rows,
                       &options.cache_lookahead)) {
    return 2;
  }
  if (options.cache == CacheMode::kOracle &&
      options.pipeline == PipelineMode::kOff) {
    std::fprintf(stderr,
                 "error: --cache=oracle requires --pipeline=prefetch or "
                 "--pipeline=overlap (the oracle window is the staging "
                 "pipeline's forward visibility)\n");
    return 2;
  }
  if (!ParseColdPrecisionFlag(args, &options.cold_precision)) return 2;
  if (options.cold_precision != ColdPrecision::kFp32 &&
      options.cache == CacheMode::kOracle) {
    std::fprintf(stderr,
                 "error: --cold-precision=%s cannot be combined with "
                 "--cache=oracle (the cache's budget accounting assumes "
                 "fp32 cold rows)\n",
                 std::string(ColdPrecisionName(options.cold_precision))
                     .c_str());
    return 2;
  }
  if (!ParseStaleFlags(args, &options.stale_skip, &options.stale_threshold,
                       &options.stale_min_visits)) {
    return 2;
  }
  if (options.stale_skip != StaleSkipMode::kOff && !options.run_math) {
    std::fprintf(stderr,
                 "error: --stale-skip requires real math; it cannot be "
                 "combined with --cost-only (skip decisions read measured "
                 "per-row update magnitudes)\n");
    return 2;
  }
  if (options.stale_skip != StaleSkipMode::kOff &&
      options.cache == CacheMode::kOracle) {
    std::fprintf(stderr,
                 "error: --stale-skip cannot be combined with "
                 "--cache=oracle (both reprice the same cold-step charges, "
                 "so their savings would double-count)\n");
    return 2;
  }
  options.checkpoint.path = args.GetString("ckpt", "");
  options.checkpoint.every_steps = static_cast<size_t>(ckpt_every);
  options.checkpoint.resume = args.GetBool("resume", false);

  FaultInjector injector;
  const std::string fault_plan = args.GetString("fault-plan", "");
  if (!fault_plan.empty()) {
    auto parsed = FaultInjector::Parse(fault_plan);
    if (!parsed.ok()) return Fail(parsed.status());
    injector = std::move(parsed).value();
    options.fault_injector = &injector;
  }
  long gpus_flag = 0, nodes_flag = 0;
  if (!StrictLongFlag(args, "gpus", 4, 1, &gpus_flag) ||
      !StrictLongFlag(args, "nodes", 1, 1, &nodes_flag)) {
    return 2;
  }
  const int gpus = static_cast<int>(gpus_flag);
  const int nodes = static_cast<int>(nodes_flag);
  SystemSpec system = nodes > 1 ? MakeMultiNodeCluster(nodes, gpus)
                                : MakePaperServer(gpus);
  if (!ParseShardingFlag(args, &options.sharding)) return 2;

  FaeConfig config;
  config.sample_rate = args.GetDouble("sample-rate", 0.05);
  config.gpu_memory_budget = args.GetPositiveInt("budget-kb", 384) * 1024ull;
  config.large_table_bytes = args.GetPositiveInt("cutoff-kb", 4) * 1024ull;
  config.cold_precision = options.cold_precision;
  system.hot_embedding_budget = config.gpu_memory_budget;

  auto model = MakeModel(dataset->schema(),
                         args.GetBool("full-model", false), 7);
  Trainer trainer(model.get(), system, options);

  const std::string mode = args.GetString("mode", "fae");
  if (options.cold_precision != ColdPrecision::kFp32 && mode != "fae") {
    std::fprintf(stderr,
                 "error: --cold-precision applies to --mode=fae only "
                 "(mode '%s' has no hot/cold partition, so there is no "
                 "cold store to quantize)\n",
                 mode.c_str());
    return 2;
  }
  if (options.sharding != ShardingMode::kReplicate && mode != "fae") {
    std::fprintf(stderr,
                 "error: --sharding applies to --mode=fae only (mode '%s' "
                 "has no planner-owned hot slice to shard)\n",
                 mode.c_str());
    return 2;
  }
  if (options.cache == CacheMode::kOracle && mode != "baseline" &&
      mode != "fae") {
    std::fprintf(stderr,
                 "error: --cache=oracle applies to --mode=baseline or "
                 "--mode=fae only (mode '%s' has no pipelined hybrid "
                 "path to accelerate)\n",
                 mode.c_str());
    return 2;
  }
  if (options.stale_skip == StaleSkipMode::kCold && mode != "fae") {
    std::fprintf(stderr,
                 "error: --stale-skip=cold applies to --mode=fae only "
                 "(mode '%s' has no hot/cold partition, so there is no hot "
                 "set to pin live; use --stale-skip=all)\n",
                 mode.c_str());
    return 2;
  }
  if (options.stale_skip != StaleSkipMode::kOff && mode != "baseline" &&
      mode != "fae") {
    std::fprintf(stderr,
                 "error: --stale-skip applies to --mode=baseline or "
                 "--mode=fae only (mode '%s' runs no fused CPU sparse "
                 "step for the tracker to ride)\n",
                 mode.c_str());
    return 2;
  }
  TrainReport report;
  if (mode == "baseline") {
    auto r = trainer.TrainBaselineResumable(*dataset, split);
    if (!r.ok()) return Fail(r.status());
    report = std::move(r).value();
  } else if (mode == "nvopt") {
    report = trainer.TrainNvOpt(*dataset, split);
  } else if (mode == "model-parallel") {
    auto r = trainer.TrainModelParallel(*dataset, split);
    if (!r.ok()) return Fail(r.status());
    report = std::move(r).value();
  } else if (mode == "fae" || mode == "cache") {
    FaePipeline pipeline(config);
    StatusOr<FaePlan> plan = [&]() -> StatusOr<FaePlan> {
      const std::string plan_path = args.GetString("plan", "");
      if (!plan_path.empty()) {
        return pipeline.PrepareCached(*dataset, split.train, plan_path);
      }
      return pipeline.Prepare(*dataset, split.train);
    }();
    if (!plan.ok()) return Fail(plan.status());
    if (mode == "cache") {
      report = trainer.TrainGpuCache(*dataset, split, *plan);
    } else {
      auto r = trainer.TrainFaeWithPlan(*dataset, split, config, *plan);
      if (!r.ok()) return Fail(r.status());
      report = std::move(r).value();
    }
  } else {
    return Usage();
  }

  std::printf("mode %s, %d GPU(s), %zu batches\n",
              std::string(TrainModeName(report.mode)).c_str(), gpus,
              report.num_batches);
  std::printf("modeled time: %s   per-GPU power: %.1fW\n",
              HumanSeconds(report.modeled_seconds).c_str(),
              report.avg_gpu_watts);
  if (options.pipeline != PipelineMode::kOff) {
    std::printf(
        "pipeline %s (depth %zu): staged %s of input, overlap hid %s "
        "(%.1f%% of the serial wall)\n",
        std::string(PipelineModeName(options.pipeline)).c_str(),
        options.pipeline_depth, HumanSeconds(report.prep_seconds).c_str(),
        HumanSeconds(report.overlap_saved_seconds).c_str(),
        100 * report.overlap_fraction);
  }
  if (options.cache == CacheMode::kOracle) {
    std::printf(
        "cache %s (budget %zu rows, lookahead %zu): hit rate %.1f%%, "
        "saved %s, prefetch %s, writeback %s, transfer %s -> %s\n",
        std::string(CacheModeName(options.cache)).c_str(),
        options.cache_budget_rows, options.cache_lookahead,
        100 * report.cache_hit_rate,
        HumanSeconds(report.cache_saved_seconds).c_str(),
        HumanBytes(report.cache_prefetch_bytes).c_str(),
        HumanBytes(report.cache_writeback_bytes).c_str(),
        HumanBytes(report.cache_plain_transfer_bytes).c_str(),
        HumanBytes(report.cache_effective_transfer_bytes).c_str());
  }
  if (options.run_math) {
    std::printf("train acc %.2f%%  test acc %.2f%%  test loss %.4f\n",
                100 * report.final_train_acc, 100 * report.final_test_acc,
                report.final_test_loss);
  }
  if (report.mode == TrainMode::kFae) {
    std::printf(
        "fae: hot inputs %.1f%%, %zu transitions, synced %s, final R(%.0f)\n",
        100 * report.hot_fraction, report.transitions,
        HumanBytes(report.sync_bytes).c_str(), report.final_rate);
    if (options.sharding != ShardingMode::kReplicate) {
      std::printf(
          "sharding %s over %d device(s): %s %s vs replicate, imbalance "
          "%.3f, replicated %llu rows (%s), max shard %s\n",
          std::string(ShardingModeName(options.sharding)).c_str(),
          system.WorldSize(),
          report.sharding_saved_seconds >= 0.0 ? "saved" : "cost",
          HumanSeconds(report.sharding_saved_seconds >= 0.0
                           ? report.sharding_saved_seconds
                           : -report.sharding_saved_seconds)
              .c_str(),
          report.sharding_imbalance,
          static_cast<unsigned long long>(report.sharding_replicated_rows),
          HumanBytes(report.sharding_replicated_bytes).c_str(),
          HumanBytes(report.sharding_max_shard_bytes).c_str());
    }
    if (options.cold_precision != ColdPrecision::kFp32) {
      std::printf(
          "cold store %s: %llu rows in %s, reclaimed %s, effective hot "
          "budget %s\n",
          std::string(ColdPrecisionName(options.cold_precision)).c_str(),
          static_cast<unsigned long long>(report.cold_rows),
          HumanBytes(report.cold_store_bytes).c_str(),
          HumanBytes(report.cold_reclaimed_bytes).c_str(),
          HumanBytes(report.effective_hot_budget).c_str());
    }
  }
  if (options.stale_skip != StaleSkipMode::kOff) {
    const uint64_t visits =
        report.stale_skipped_rows + report.stale_updated_rows;
    std::printf(
        "stale skip %s (threshold %g, min visits %zu): skipped %.1f%% of "
        "row-updates (%llu of %llu), saved %s, reactivated %llu, guard "
        "-%llu/+%llu, final threshold %g\n",
        std::string(StaleSkipModeName(options.stale_skip)).c_str(),
        options.stale_threshold, options.stale_min_visits,
        visits > 0 ? 100.0 * static_cast<double>(report.stale_skipped_rows) /
                         static_cast<double>(visits)
                   : 0.0,
        static_cast<unsigned long long>(report.stale_skipped_rows),
        static_cast<unsigned long long>(visits),
        HumanSeconds(report.stale_skip_saved_seconds).c_str(),
        static_cast<unsigned long long>(report.stale_reactivated_rows),
        static_cast<unsigned long long>(report.stale_guard_tightens),
        static_cast<unsigned long long>(report.stale_guard_widens),
        report.stale_final_threshold);
  }
  if (report.resumed) {
    std::printf("resumed from %s at iteration %llu\n",
                options.checkpoint.path.c_str(),
                static_cast<unsigned long long>(report.resumed_at));
  }
  if (report.degraded) {
    std::printf(
        "degraded: hot slice over budget; demoted %llu rows, %llu inputs "
        "fell back to the cold path\n",
        static_cast<unsigned long long>(report.demoted_rows),
        static_cast<unsigned long long>(report.fallback_inputs));
  }
  if (options.fault_injector != nullptr) {
    const FaultStats& fs = report.faults;
    std::printf(
        "faults: %llu device (%llu retries), %llu stalls, %llu corrupt "
        "syncs, %llu crashes\n",
        static_cast<unsigned long long>(fs.device_faults),
        static_cast<unsigned long long>(fs.retries),
        static_cast<unsigned long long>(fs.link_stalls),
        static_cast<unsigned long long>(fs.corrupt_syncs),
        static_cast<unsigned long long>(fs.crashes));
  }
  if (report.interrupted) {
    std::printf(
        "run interrupted by an injected crash at iteration %zu; rerun with "
        "--resume to continue from the last checkpoint\n",
        report.num_batches);
  }
  std::printf("\nphase breakdown:\n%s", report.timeline.Report().c_str());
  return 0;
}

int Serve(const bench::Args& args) {
  const std::string data_path = args.GetString("data", "");
  if (data_path.empty()) return Usage();
  auto dataset = DatasetIo::Load(data_path);
  if (!dataset.ok()) return Fail(dataset.status());

  // A --serve-config file seeds the options; flags override field by field,
  // and both paths funnel through ServeOptions::Validate.
  ServeOptions opts;
  const std::string config_path = args.GetString("serve-config", "");
  if (!config_path.empty()) {
    std::ifstream in(config_path);
    if (!in) {
      std::fprintf(stderr, "error: cannot read --serve-config=%s\n",
                   config_path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto parsed = ServeOptions::Parse(buf.str());
    if (!parsed.ok()) return Fail(parsed.status());
    opts = std::move(parsed).value();
  }
  long v = 0;
  double d = 0.0;
  if (!StrictLongFlag(args, "batch", static_cast<long>(opts.batch_size), 1,
                      &v)) {
    return 2;
  }
  opts.batch_size = static_cast<size_t>(v);
  if (!StrictLongFlag(args, "batches", static_cast<long>(opts.num_batches),
                      0, &v)) {
    return 2;
  }
  opts.num_batches = static_cast<size_t>(v);
  if (!StrictDoubleFlag(args, "slo", opts.slo_hit_rate, &d)) return 2;
  opts.slo_hit_rate = d;
  if (!StrictDoubleFlag(args, "ema-alpha", opts.ema_alpha, &d)) return 2;
  opts.ema_alpha = d;
  if (!StrictLongFlag(args, "recal-window",
                      static_cast<long>(opts.recal_window), 1, &v)) {
    return 2;
  }
  opts.recal_window = static_cast<size_t>(v);
  if (!StrictLongFlag(args, "recal-cooldown",
                      static_cast<long>(opts.recal_cooldown), 1, &v)) {
    return 2;
  }
  opts.recal_cooldown = static_cast<size_t>(v);
  if (!StrictDoubleFlag(args, "deadline-ms",
                        opts.watchdog_deadline_seconds * 1e3, &d)) {
    return 2;
  }
  opts.watchdog_deadline_seconds = d / 1e3;
  if (!StrictLongFlag(args, "recal-retries",
                      static_cast<long>(opts.max_recal_retries), 1, &v)) {
    return 2;
  }
  opts.max_recal_retries = static_cast<uint32_t>(v);
  if (!StrictDoubleFlag(args, "backoff-ms", opts.retry_backoff_seconds * 1e3,
                        &d)) {
    return 2;
  }
  opts.retry_backoff_seconds = d / 1e3;
  if (!StrictLongFlag(args, "threads", static_cast<long>(opts.num_threads),
                      1, &v)) {
    return 2;
  }
  opts.num_threads = static_cast<size_t>(v);
  if (!StrictLongFlag(args, "seed", static_cast<long>(opts.seed), 0, &v)) {
    return 2;
  }
  opts.seed = static_cast<uint64_t>(v);
  if (args.GetBool("no-train", false)) opts.continuous_training = false;
  opts.swap_path = args.GetString("swap", "");
  if (!ParseCacheFlags(args, &opts.cache, &opts.cache_budget_rows,
                       &opts.cache_lookahead)) {
    return 2;
  }
  if (!ParseColdPrecisionFlag(args, &opts.cold_precision)) return 2;
  if (opts.cold_precision != ColdPrecision::kFp32 &&
      opts.cache == CacheMode::kOracle) {
    std::fprintf(stderr,
                 "error: --cold-precision=%s cannot be combined with "
                 "--cache=oracle (the cache's budget accounting assumes "
                 "fp32 cold rows)\n",
                 std::string(ColdPrecisionName(opts.cold_precision)).c_str());
    return 2;
  }
  const Status valid = opts.Validate();
  if (!valid.ok()) return Fail(valid);

  FaultInjector injector;
  const std::string fault_plan = args.GetString("fault-plan", "");
  if (!fault_plan.empty()) {
    auto parsed = FaultInjector::Parse(fault_plan);
    if (!parsed.ok()) return Fail(parsed.status());
    injector = std::move(parsed).value();
    opts.fault_injector = &injector;
  }

  long gpus_flag = 0;
  if (!StrictLongFlag(args, "gpus", 4, 1, &gpus_flag)) return 2;
  SystemSpec system = MakePaperServer(static_cast<int>(gpus_flag));
  FaeConfig config;
  config.sample_rate = args.GetDouble("sample-rate", 0.05);
  config.gpu_memory_budget = args.GetPositiveInt("budget-kb", 384) * 1024ull;
  config.large_table_bytes = args.GetPositiveInt("cutoff-kb", 4) * 1024ull;
  system.hot_embedding_budget = config.gpu_memory_budget;

  // The offline plan the serving loop starts from (and recalibrates away
  // from once the traffic drifts).
  std::vector<uint64_t> train_ids(dataset->size());
  std::iota(train_ids.begin(), train_ids.end(), 0);
  FaePipeline pipeline(config);
  StatusOr<FaePlan> plan = [&]() -> StatusOr<FaePlan> {
    const std::string plan_path = args.GetString("plan", "");
    if (!plan_path.empty()) {
      return pipeline.PrepareCached(*dataset, train_ids, plan_path);
    }
    return pipeline.Prepare(*dataset, train_ids);
  }();
  if (!plan.ok()) return Fail(plan.status());

  auto model = MakeModel(dataset->schema(),
                         args.GetBool("full-model", false), 7);
  ServingLoop loop(model.get(), system, config, opts);
  auto report = loop.Serve(*dataset, *plan);
  if (!report.ok()) return Fail(report.status());

  std::printf("served %zu batches, %llu requests, %llu lookups\n",
              report->batches,
              static_cast<unsigned long long>(report->requests),
              static_cast<unsigned long long>(report->lookups));
  std::printf(
      "hit rate %.1f%% (stale %.1f%%, master fallback %.1f%%, miss %.1f%%), "
      "coverage ema %.3f\n",
      100.0 * report->hit_rate,
      report->lookups
          ? 100.0 * report->stale_hits / static_cast<double>(report->lookups)
          : 0.0,
      report->lookups ? 100.0 * report->master_fallbacks /
                            static_cast<double>(report->lookups)
                      : 0.0,
      report->lookups
          ? 100.0 * report->misses / static_cast<double>(report->lookups)
          : 0.0,
      report->coverage_ema);
  if (opts.cache == CacheMode::kOracle) {
    std::printf(
        "cold cache %s (budget %zu rows, lookahead %zu): absorbed %.1f%% of "
        "cold lookups (%llu hits), %llu stale refreshes, %s prefetched, "
        "saved %s\n",
        std::string(CacheModeName(opts.cache)).c_str(),
        opts.cache_budget_rows, opts.cache_lookahead,
        100.0 * report->cache_hit_rate,
        static_cast<unsigned long long>(report->cache_hits),
        static_cast<unsigned long long>(report->cache_stale_refreshes),
        HumanBytes(report->cache_prefetch_bytes).c_str(),
        HumanSeconds(report->cache_saved_seconds).c_str());
  }
  if (opts.cold_precision != ColdPrecision::kFp32) {
    uint64_t cold_rows = 0;
    uint64_t cold_bytes = 0;
    for (const EmbeddingTable& t : model->tables()) {
      cold_rows += t.cold_rows();
      cold_bytes += t.ColdStoreBytes();
    }
    std::printf("cold store %s: %llu rows in %s (partition fixed across "
                "swaps)\n",
                std::string(ColdPrecisionName(opts.cold_precision)).c_str(),
                static_cast<unsigned long long>(cold_rows),
                HumanBytes(cold_bytes).c_str());
  }
  std::printf("latency p50 %.1fus  p99 %.1fus\n",
              report->p50_latency_ns / 1e3, report->p99_latency_ns / 1e3);
  std::printf(
      "recal: %zu attempts, %zu deadline misses, %zu failures, %zu swaps, "
      "%zu rejects\n",
      report->recal_attempts, report->deadline_misses, report->recal_failures,
      report->swaps, report->swap_rejects);
  if (report->degraded_batches > 0 || report->degraded_at_exit) {
    std::printf("degraded: %zu batches served stale%s\n",
                report->degraded_batches,
                report->degraded_at_exit ? " (still degraded at exit)" : "");
  }
  if (opts.continuous_training) {
    std::printf("continuous training: %zu steps, loss %.4f, acc %.2f%%\n",
                report->train_steps, report->train_loss,
                100.0 * report->train_acc);
  }
  if (opts.fault_injector != nullptr) {
    const FaultStats& fs = report->faults;
    std::printf(
        "faults: %llu recal stalls, %llu swap crashes, %llu lookup losses, "
        "%llu recoveries\n",
        static_cast<unsigned long long>(fs.recal_stalls),
        static_cast<unsigned long long>(fs.swap_crashes),
        static_cast<unsigned long long>(fs.lookup_losses),
        static_cast<unsigned long long>(fs.recoveries));
  }
  if (report->interrupted) {
    std::printf("serving interrupted by an injected crash at batch %zu\n",
                report->batches);
  }
  std::printf("modeled time: %s\n",
              HumanSeconds(report->modeled_seconds).c_str());
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  bench::Args args(argc, argv);
  if (command == "generate") return Generate(args);
  if (command == "inspect") return Inspect(args);
  if (command == "preprocess") return Preprocess(args);
  if (command == "train") return Train(args);
  if (command == "serve") return Serve(args);
  return Usage();
}

}  // namespace
}  // namespace fae

int main(int argc, char** argv) { return fae::Run(argc, argv); }
