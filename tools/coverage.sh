#!/usr/bin/env bash
# Line-coverage build + report for the FAE repo, using only what gcc ships
# with (gcov; no lcov/gcovr dependency):
#
#   tools/coverage.sh [build-dir]         # default build dir: build-cov
#
# Configures the build dir with -DFAE_COVERAGE=ON (only if it is not
# already configured), builds, runs the full ctest suite, then aggregates
# gcov's per-file "Lines executed" numbers for everything under src/ into
#   <build-dir>/coverage_summary.txt
# — one line per source file plus a TOTAL, worst-covered first. CI uploads
# that file as the coverage artifact.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-build-cov}"
case "$BUILD_DIR" in
  /*) ;;
  *) BUILD_DIR="$ROOT/$BUILD_DIR" ;;
esac

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S "$ROOT" -DFAE_COVERAGE=ON
elif ! grep -q '^FAE_COVERAGE:BOOL=ON$' "$BUILD_DIR/CMakeCache.txt"; then
  echo "error: $BUILD_DIR is configured without -DFAE_COVERAGE=ON" >&2
  exit 2
fi

cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

SUMMARY="$BUILD_DIR/coverage_summary.txt"
cd "$BUILD_DIR"

GCDA_LIST="$(find . -name '*.gcda')"
if [ -z "$GCDA_LIST" ]; then
  echo "error: no .gcda files under $BUILD_DIR — did the tests run?" >&2
  exit 2
fi

# gcov -n: report only (no .gcov files). Each header is reported once per
# including TU, so the awk below keeps the best-covered occurrence per
# file — the union the TU-local counters approximate — and sums src/ files
# into the TOTAL.
# shellcheck disable=SC2086
gcov -n $GCDA_LIST 2>/dev/null | awk -v root="$ROOT/" '
  /^File /{
    f = $2
    gsub(/\x27/, "", f)
    sub(root, "", f)
  }
  /^Lines executed:/{
    if (f == "") next
    pct = $0
    sub(/^Lines executed:/, "", pct)
    split(pct, parts, "% of ")
    covered = parts[1] / 100.0 * parts[2]
    if (f ~ /^src\// && covered >= best_cov[f]) {
      best_cov[f] = covered
      best_tot[f] = parts[2]
    }
    f = ""
  }
  END{
    total_cov = 0
    total_lines = 0
    for (f in best_tot) {
      total_cov += best_cov[f]
      total_lines += best_tot[f]
      printf "%6.1f%% %6d  %s\n", 100.0 * best_cov[f] / best_tot[f],
             best_tot[f], f
    }
    if (total_lines == 0) {
      print "error: gcov reported no src/ lines" > "/dev/stderr"
      exit 2
    }
    printf "%6.1f%% %6d  TOTAL\n", 100.0 * total_cov / total_lines,
           total_lines
  }' | sort -n > "$SUMMARY"

echo
echo "=== line coverage (worst first; full report: $SUMMARY) ==="
head -n 15 "$SUMMARY"
echo "..."
grep ' TOTAL$' "$SUMMARY"
